/**
 * @file
 * Session hibernation tests (ctest label: hibernate).
 *
 * Locks the PR-7 contracts:
 *  - serial framing rejects truncation, corruption, foreign blobs and
 *    cross-version restores before any payload is interpreted;
 *  - StreamingSession::serialize/restore is bit-exact: a session
 *    restored at any event boundary continues byte-identically to one
 *    that never hibernated, for every policy kind (including the
 *    memory-tracking decorator), and re-serializing a restored
 *    session reproduces the original blob byte for byte;
 *  - the ColdStore implementations store/fetch/erase blobs and
 *    account traffic (FileColdStore persists across instances);
 *  - KvBudget selects victims Bulk-first / least-recently-executed
 *    and keeps resident-byte accounting through transitions;
 *  - the Engine hibernates under a tiny KV budget and wakes
 *    transparently on the next verb or drained accessor, with
 *    per-session results identical to sequential ground truth across
 *    the scheduler shape zoo; the default budget of 0 changes
 *    nothing.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "kvstore/cold_store.hh"
#include "serve/engine.hh"
#include "serve/kv_budget.hh"
#include "testutil.hh"

using namespace vrex;
using namespace vrex::testutil;

namespace
{

/** Every policy kind plus the replay-decorated ReSV variant. */
std::vector<serve::PolicySpec>
hibernateSpecZoo()
{
    std::vector<serve::PolicySpec> specs = policySpecZoo();
    TierConfig tiers;
    tiers.deviceKvCapacityBytes = 4096;
    specs.push_back(serve::PolicySpec::resv().withMemoryTracking(tiers));
    return specs;
}

/** Re-seal @p blob after editing: recompute the footer checksum. */
void
resealBlob(std::vector<uint8_t> &blob)
{
    const size_t body = blob.size() - sizeof(uint64_t);
    const uint64_t sum = serial::fnv1a64(blob.data(), body);
    std::memcpy(blob.data() + body, &sum, sizeof(sum));
}

/** A fresh (unbegun) session for (model, spec, seed); the policy
 *  instance must outlive the session. */
StreamingSession
freshSession(const ModelConfig &model, const serve::PolicySpec &spec,
             uint64_t seed, serve::PolicyInstance &holder)
{
    holder = serve::makePolicy(model, spec);
    return StreamingSession(model, holder.active(), seed);
}

} // namespace

// ---------------------------------------------------------------
// serial framing
// ---------------------------------------------------------------

TEST(Serial, PrimitiveRoundTrip)
{
    serial::ByteWriter w(7);
    w.put<uint32_t>(0xdeadbeefu);
    w.put<uint64_t>(0x0123456789abcdefull);
    w.put<double>(-0.1);
    w.putBool(true);
    w.putBool(false);
    w.putString("hibernate");
    w.putString("");
    w.putVec<float>({1.5f, -2.25f, 0.0f});
    w.putVec<uint32_t>({});
    std::vector<uint8_t> blob = w.finish();

    serial::ByteReader r(blob, 7);
    EXPECT_EQ(r.get<uint32_t>(), 0xdeadbeefu);
    EXPECT_EQ(r.get<uint64_t>(), 0x0123456789abcdefull);
    EXPECT_EQ(r.get<double>(), -0.1);
    EXPECT_TRUE(r.getBool());
    EXPECT_FALSE(r.getBool());
    EXPECT_EQ(r.getString(), "hibernate");
    EXPECT_EQ(r.getString(), "");
    EXPECT_EQ(r.getVec<float>(), (std::vector<float>{1.5f, -2.25f, 0.0f}));
    EXPECT_TRUE(r.getVec<uint32_t>().empty());
    r.expectEnd();
}

TEST(Serial, RejectsTruncation)
{
    serial::ByteWriter w(1);
    w.putVec<uint64_t>({1, 2, 3, 4});
    std::vector<uint8_t> blob = w.finish();
    for (size_t keep : {size_t(0), size_t(7), size_t(15),
                        blob.size() - 1}) {
        std::vector<uint8_t> cut(blob.begin(), blob.begin() + keep);
        EXPECT_THROW(serial::ByteReader(cut, 1), serial::SerialError)
            << "kept " << keep << " bytes";
    }
}

TEST(Serial, RejectsCorruption)
{
    serial::ByteWriter w(1);
    w.putString("payload-payload-payload");
    std::vector<uint8_t> blob = w.finish();
    // Any flipped byte — header, payload, or footer — must be caught
    // by the checksum (or the checksum itself no longer matches).
    for (size_t at = 0; at < blob.size(); at += 3) {
        std::vector<uint8_t> bad = blob;
        bad[at] ^= 0x40;
        EXPECT_THROW(serial::ByteReader(bad, 1), serial::SerialError)
            << "flipped byte " << at;
    }
}

TEST(Serial, RejectsForeignMagic)
{
    serial::ByteWriter w(1);
    w.put<uint32_t>(99);
    std::vector<uint8_t> blob = w.finish();
    std::memcpy(blob.data(), "JUNK", 4);
    resealBlob(blob); // Valid checksum, wrong magic.
    EXPECT_THROW(serial::ByteReader(blob, 1), serial::SerialError);
}

TEST(Serial, RejectsCrossVersion)
{
    serial::ByteWriter w(2);
    w.put<uint32_t>(99);
    std::vector<uint8_t> blob = w.finish();
    EXPECT_THROW(serial::ByteReader(blob, 1), serial::SerialError);
    EXPECT_NO_THROW(serial::ByteReader(blob, 2));
}

TEST(Serial, RejectsOversizedVectorLength)
{
    serial::ByteWriter w(1);
    w.put<uint64_t>(uint64_t(1) << 60); // Insane element count.
    std::vector<uint8_t> blob = w.finish();
    serial::ByteReader r(blob, 1);
    EXPECT_THROW((void)r.getVec<uint32_t>(), serial::SerialError);
}

TEST(Serial, ExpectEndCatchesTrailingPayload)
{
    serial::ByteWriter w(1);
    w.put<uint32_t>(1);
    w.put<uint32_t>(2);
    std::vector<uint8_t> blob = w.finish();
    serial::ByteReader r(blob, 1);
    EXPECT_EQ(r.get<uint32_t>(), 1u);
    EXPECT_THROW(r.expectEnd(), serial::SerialError);
    EXPECT_EQ(r.get<uint32_t>(), 2u);
    EXPECT_NO_THROW(r.expectEnd());
}

// ---------------------------------------------------------------
// StreamingSession serialize/restore
// ---------------------------------------------------------------

TEST(SessionSerialize, MidRunRestoreMatchesUninterrupted)
{
    const ModelConfig model = ModelConfig::tiny();
    const uint64_t seed = 77;
    const auto specs = hibernateSpecZoo();
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE("spec " + std::to_string(i));
        const serve::PolicySpec &spec = specs[i];
        SessionScript script = randomVerbScript(900 + i, i);
        const SessionRunResult ref =
            sequentialReplay(model, script, spec, seed);

        // Run half the script, hibernate, restore onto a fresh
        // equivalent session, finish there.
        const size_t cut = script.events.size() / 2;
        serve::PolicyInstance p1;
        StreamingSession s1 = freshSession(model, spec, seed, p1);
        s1.begin(script.name, script.video, script.seed);
        for (size_t e = 0; e < cut; ++e)
            s1.apply(script.events[e]);
        const std::vector<uint8_t> blob = s1.serialize();

        serve::PolicyInstance p2;
        StreamingSession s2 = freshSession(model, spec, seed, p2);
        s2.restore(blob);
        // A restored session re-serializes to the identical blob.
        EXPECT_EQ(s2.serialize(), blob);
        for (size_t e = cut; e < script.events.size(); ++e)
            s2.apply(script.events[e]);
        expectIdenticalRuns(s2.snapshot(), ref);
    }
}

TEST(SessionSerialize, EveryEventBoundaryIsARestorePoint)
{
    const ModelConfig model = ModelConfig::tiny();
    const uint64_t seed = 31;
    ResvConfig rc;
    rc.thrWics = 0.4f;
    const serve::PolicySpec spec = serve::PolicySpec::resv(rc);
    SessionScript script = randomVerbScript(333, 0);
    const SessionRunResult ref =
        sequentialReplay(model, script, spec, seed);

    for (size_t cut = 0; cut <= script.events.size(); ++cut) {
        SCOPED_TRACE("cut " + std::to_string(cut));
        serve::PolicyInstance p1;
        StreamingSession s1 = freshSession(model, spec, seed, p1);
        s1.begin(script.name, script.video, script.seed);
        for (size_t e = 0; e < cut; ++e)
            s1.apply(script.events[e]);
        const std::vector<uint8_t> blob = s1.serialize();

        serve::PolicyInstance p2;
        StreamingSession s2 = freshSession(model, spec, seed, p2);
        s2.restore(blob);
        for (size_t e = cut; e < script.events.size(); ++e)
            s2.apply(script.events[e]);
        expectIdenticalRuns(s2.snapshot(), ref);
    }
}

TEST(SessionSerialize, RestoredSessionKeepsTeacherForcing)
{
    const ModelConfig model = ModelConfig::tiny();
    const serve::PolicySpec spec = serve::PolicySpec::full();
    SessionScript script = randomVerbScript(555, 2);

    // Reference: forced run, uninterrupted.
    serve::PolicyInstance pr;
    StreamingSession sr = freshSession(model, spec, 9, pr);
    const std::vector<uint32_t> forced(24, 3);
    const SessionRunResult ref = sr.run(script, forced);

    serve::PolicyInstance p1;
    StreamingSession s1 = freshSession(model, spec, 9, p1);
    s1.begin(script.name, script.video, script.seed, forced);
    const size_t cut = script.events.size() / 2;
    for (size_t e = 0; e < cut; ++e)
        s1.apply(script.events[e]);
    const std::vector<uint8_t> blob = s1.serialize();

    serve::PolicyInstance p2;
    StreamingSession s2 = freshSession(model, spec, 9, p2);
    s2.restore(blob); // Forced tokens + position travel in the blob.
    for (size_t e = cut; e < script.events.size(); ++e)
        s2.apply(script.events[e]);
    expectIdenticalRuns(s2.snapshot(), ref);
}

TEST(SessionSerialize, RejectsCorruptionTruncationAndVersionSkew)
{
    const ModelConfig model = ModelConfig::tiny();
    const serve::PolicySpec spec = serve::PolicySpec::rekv(0.3f);
    SessionScript script = randomVerbScript(444, 1);

    serve::PolicyInstance p1;
    StreamingSession s1 = freshSession(model, spec, 5, p1);
    s1.begin(script.name, script.video, script.seed);
    for (size_t e = 0; e < script.events.size() / 2; ++e)
        s1.apply(script.events[e]);
    const std::vector<uint8_t> blob = s1.serialize();

    serve::PolicyInstance p2;
    StreamingSession s2 = freshSession(model, spec, 5, p2);

    // Corruption: flipped bytes across the blob.
    for (size_t at = 0; at < blob.size();
         at += std::max<size_t>(1, blob.size() / 13)) {
        std::vector<uint8_t> bad = blob;
        bad[at] ^= 0x01;
        EXPECT_THROW(s2.restore(bad), serial::SerialError)
            << "flipped byte " << at;
    }

    // Truncation at several points.
    for (size_t keep : {size_t(0), size_t(10), blob.size() / 2,
                        blob.size() - 1}) {
        std::vector<uint8_t> cut(blob.begin(), blob.begin() + keep);
        EXPECT_THROW(s2.restore(cut), serial::SerialError)
            << "kept " << keep << " bytes";
    }

    // Version skew: bump the version field, re-seal the checksum —
    // the reader must refuse on version, not checksum.
    std::vector<uint8_t> skewed = blob;
    const uint32_t next = StreamingSession::kBlobVersion + 1;
    std::memcpy(skewed.data() + sizeof(uint32_t), &next, sizeof(next));
    resealBlob(skewed);
    EXPECT_THROW(s2.restore(skewed), serial::SerialError);

    // The unmodified blob still restores fine afterwards.
    EXPECT_NO_THROW(s2.restore(blob));
}

TEST(SessionSerialize, RejectsIdentityMismatch)
{
    const ModelConfig model = ModelConfig::tiny();
    const serve::PolicySpec spec = serve::PolicySpec::flexgen();
    SessionScript script = randomVerbScript(666, 3);

    serve::PolicyInstance p1;
    StreamingSession s1 = freshSession(model, spec, 21, p1);
    s1.begin(script.name, script.video, script.seed);
    for (size_t e = 0; e < 4; ++e)
        s1.apply(script.events[e]);
    const std::vector<uint8_t> blob = s1.serialize();

    // Wrong master seed.
    serve::PolicyInstance p2;
    StreamingSession other_seed = freshSession(model, spec, 22, p2);
    EXPECT_THROW(other_seed.restore(blob), serial::SerialError);

    // Wrong model geometry.
    ModelConfig grown = model;
    grown.nLayers += 1;
    serve::PolicyInstance p3;
    StreamingSession other_geom = freshSession(grown, spec, 21, p3);
    EXPECT_THROW(other_geom.restore(blob), serial::SerialError);

    // Policy-presence mismatch: blob carries policy state, the
    // restoring session runs full attention with no policy.
    StreamingSession no_policy(model, nullptr, 21);
    EXPECT_THROW(no_policy.restore(blob), serial::SerialError);

    // And the mirror image: policy-less blob into a policied session.
    StreamingSession bare(model, nullptr, 21);
    bare.begin(script.name, script.video, script.seed);
    bare.apply(script.events[0]);
    const std::vector<uint8_t> bare_blob = bare.serialize();
    serve::PolicyInstance p4;
    StreamingSession policied = freshSession(model, spec, 21, p4);
    EXPECT_THROW(policied.restore(bare_blob), serial::SerialError);
}

// ---------------------------------------------------------------
// ColdStore
// ---------------------------------------------------------------

TEST(ColdStore, MemoryStoreRoundTrip)
{
    MemoryColdStore store;
    EXPECT_EQ(store.tier(), Tier::CpuMem);
    EXPECT_EQ(store.count(), 0u);
    EXPECT_FALSE(store.contains(7));
    EXPECT_THROW((void)store.get(7), std::out_of_range);

    const std::vector<uint8_t> a{1, 2, 3}, b{4, 5, 6, 7};
    store.put(7, a);
    store.put(9, b);
    EXPECT_TRUE(store.contains(7));
    EXPECT_EQ(store.get(7), a);
    EXPECT_EQ(store.get(9), b);
    EXPECT_EQ(store.count(), 2u);
    EXPECT_EQ(store.totalBytes(), 7u);

    // Replacement: bytes update, count does not.
    store.put(7, b);
    EXPECT_EQ(store.count(), 2u);
    EXPECT_EQ(store.totalBytes(), 8u);

    store.erase(7);
    EXPECT_FALSE(store.contains(7));
    EXPECT_EQ(store.count(), 1u);
    store.erase(7); // No-op when absent.

    const TransferStats xs = store.stats();
    EXPECT_EQ(xs.offloadedBytes, 3u + 4u + 4u); // Three puts.
    EXPECT_EQ(xs.fetchedBytes, 3u + 4u);        // Two gets.
}

TEST(ColdStore, FileStorePersistsAcrossInstances)
{
    const std::string dir = ::testing::TempDir() + "/vrex-cold-" +
        std::to_string(::getpid());
    std::filesystem::remove_all(dir);

    const std::vector<uint8_t> blob{9, 8, 7, 6, 5};
    {
        FileColdStore store(dir);
        EXPECT_EQ(store.tier(), Tier::Storage);
        store.put(42, blob);
        EXPECT_TRUE(store.contains(42));
        EXPECT_EQ(store.totalBytes(), blob.size());
    }
    {
        // A new instance over the same directory sees the blob —
        // crash-surviving sessions can be recovered.
        FileColdStore store(dir);
        EXPECT_TRUE(store.contains(42));
        EXPECT_EQ(store.get(42), blob);
        EXPECT_EQ(store.count(), 1u);
        EXPECT_THROW((void)store.get(43), std::out_of_range);
        store.erase(42);
        EXPECT_FALSE(store.contains(42));
        EXPECT_EQ(store.count(), 0u);
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------
// KvBudget accounting + victim selection
// ---------------------------------------------------------------

TEST(KvBudget, VictimOrderBulkFirstThenLru)
{
    serve::KvBudgetConfig cfg;
    cfg.budgetBytes = 100;
    serve::KvBudget b(cfg);
    EXPECT_TRUE(b.enabled());

    b.onAdmit(1, serve::SchedClass::Interactive);
    b.onAdmit(2, serve::SchedClass::Bulk);
    b.onAdmit(3, serve::SchedClass::Bulk);
    b.onAdmit(4, serve::SchedClass::Interactive);
    b.onExecuted(1, 50);
    b.onExecuted(2, 50);
    b.onExecuted(3, 50);
    b.onExecuted(4, 50);
    EXPECT_EQ(b.residentBytes(), 200u);
    EXPECT_TRUE(b.overBudget());

    // Bulk (2 then 3, execution order) before Interactive (1 then 4);
    // the excluded self never appears.
    EXPECT_EQ(b.victims(0),
              (std::vector<uint64_t>{2, 3, 1, 4}));
    EXPECT_EQ(b.victims(1), (std::vector<uint64_t>{2, 3, 4}));

    // Re-execution refreshes recency: 2 moves behind 3.
    b.onExecuted(2, 50);
    EXPECT_EQ(b.victims(0), (std::vector<uint64_t>{3, 2, 1, 4}));

    // A class change re-ranks immediately but preserves recency:
    // 1 (tick from its first execution) is now the oldest Bulk
    // session and jumps to the front of the victim list.
    b.setClass(1, serve::SchedClass::Bulk);
    EXPECT_EQ(b.victims(0), (std::vector<uint64_t>{1, 3, 2, 4}));
}

TEST(KvBudget, TransitionsMoveResidentBytes)
{
    serve::KvBudgetConfig cfg;
    cfg.budgetBytes = 80;
    serve::KvBudget b(cfg);
    b.onAdmit(1, serve::SchedClass::Interactive);
    b.onAdmit(2, serve::SchedClass::Interactive);
    b.onExecuted(1, 60);
    b.onExecuted(2, 60);
    EXPECT_TRUE(b.overBudget());

    b.markHibernated(1, /*blob_bytes=*/30, /*ns=*/1000);
    EXPECT_TRUE(b.hibernated(1));
    EXPECT_EQ(b.residentBytes(), 60u);
    EXPECT_FALSE(b.overBudget());
    // Hibernated sessions never appear as victims.
    EXPECT_EQ(b.victims(0), std::vector<uint64_t>{2});

    b.markWoken(1, /*kv_bytes=*/60, /*blob_bytes=*/30, /*ns=*/2000);
    EXPECT_FALSE(b.hibernated(1));
    EXPECT_EQ(b.residentBytes(), 120u);

    b.onClose(2);
    EXPECT_EQ(b.residentBytes(), 60u);

    MemoryColdStore store;
    const serve::KvBudgetStats s = b.snapshot(store);
    EXPECT_EQ(s.budgetBytes, 80u);
    EXPECT_EQ(s.residentBytes, 60u);
    EXPECT_EQ(s.residentSessions, 1u);
    EXPECT_EQ(s.hibernatedSessions, 0u);
    EXPECT_EQ(s.hibernates, 1u);
    EXPECT_EQ(s.wakes, 1u);
    EXPECT_EQ(s.hibernatedBytes, 30u);
    EXPECT_EQ(s.wokenBytes, 30u);
    EXPECT_EQ(s.hibernateLatency.samples(), 1u);
    EXPECT_EQ(s.wakeLatency.samples(), 1u);
}

// ---------------------------------------------------------------
// Engine hibernation
// ---------------------------------------------------------------

TEST(EngineHibernate, ResultsMatchSequentialUnderTinyBudget)
{
    const ModelConfig model = ModelConfig::tiny();
    const auto specs = hibernateSpecZoo();
    const auto scripts = randomVerbScripts(specs.size(), 7100);

    for (const SchedShape &shape : schedShapeZoo()) {
        SCOPED_TRACE("workers " + std::to_string(shape.workers) +
                     " slice " + std::to_string(shape.sliceEvents));
        serve::EngineConfig cfg;
        cfg.model = model;
        cfg.workers = shape.workers;
        cfg.sched.sliceEvents = shape.sliceEvents;
        // A budget every non-empty session overflows alone: maximal
        // hibernate/wake churn.
        cfg.kvBudget.budgetBytes = 1;
        serve::Engine engine(cfg);

        std::vector<serve::SessionId> ids;
        for (size_t i = 0; i < specs.size(); ++i) {
            serve::SessionOptions o;
            o.policy = specs[i];
            ids.push_back(engine.submit(scripts[i], o));
        }
        engine.waitAll();

        const serve::KvBudgetStats kv = engine.stats().kv;
        EXPECT_GT(kv.hibernates, 0u);
        EXPECT_EQ(kv.hibernates, kv.hibernateLatency.samples());
        // After the final sweep at most the sweeping session itself
        // is resident.
        EXPECT_LE(kv.residentSessions, 1u);

        // Despite the churn, every session is byte-identical to its
        // sequential ground truth (result() wakes hibernated ones).
        for (size_t i = 0; i < ids.size(); ++i) {
            SCOPED_TRACE("session " + std::to_string(i));
            expectIdenticalRuns(
                engine.result(ids[i]),
                sequentialReplay(model, scripts[i], specs[i],
                                 cfg.sessionSeed));
        }
        EXPECT_GT(engine.stats().kv.wakes, 0u);
        for (serve::SessionId id : ids)
            engine.closeSession(id);
    }
}

TEST(EngineHibernate, VerbWakesHibernatedSession)
{
    const ModelConfig model = ModelConfig::tiny();
    const serve::PolicySpec spec = serve::PolicySpec::resv();
    SessionScript script = randomVerbScript(8200, 0);
    const size_t cut = script.events.size() / 2;

    serve::EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 1;
    cfg.policy = spec;
    cfg.kvBudget.budgetBytes = 1;
    serve::Engine engine(cfg);

    // A runs half its script, then B's slices find A idle and
    // hibernate it (both overflow the 1-byte budget).
    serve::SessionOptions oa = serve::SessionOptions::fromScript(script);
    serve::SessionId a = engine.createSession(oa);
    engine.enqueue(a, std::vector<SessionEvent>(
                          script.events.begin(),
                          script.events.begin() + cut));
    engine.waitAll();

    SessionScript other = randomVerbScript(8300, 1);
    serve::SessionId b = engine.submit(other);
    engine.waitAll();

    serve::KvBudgetStats kv = engine.stats().kv;
    EXPECT_GT(kv.hibernates, 0u);
    EXPECT_GE(kv.hibernatedSessions, 1u);
    EXPECT_GT(kv.coldBytes, 0u);

    // Feeding the second half wakes A transparently on dispatch.
    engine.enqueue(a, std::vector<SessionEvent>(
                          script.events.begin() + cut,
                          script.events.end()));
    engine.waitAll();
    kv = engine.stats().kv;
    EXPECT_GT(kv.wakes, 0u);
    EXPECT_EQ(kv.wakes, kv.wakeLatency.samples());

    expectIdenticalRuns(
        engine.result(a),
        sequentialReplay(model, script, spec, cfg.sessionSeed));
    engine.closeSession(a);
    engine.closeSession(b);
}

TEST(EngineHibernate, DrainedAccessorsWake)
{
    const ModelConfig model = ModelConfig::tiny();
    TierConfig tiers;
    tiers.deviceKvCapacityBytes = 4096;
    const serve::PolicySpec spec =
        serve::PolicySpec::resv().withMemoryTracking(tiers);

    serve::EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 1;
    cfg.policy = spec;
    cfg.kvBudget.budgetBytes = 1;
    serve::Engine engine(cfg);

    SessionScript sa = randomVerbScript(8400, 0);
    SessionScript sb = randomVerbScript(8500, 1);
    serve::SessionId a = engine.submit(sa);
    engine.waitAll();
    serve::SessionId b = engine.submit(sb);
    engine.waitAll(); // B's slices hibernate the idle A.

    ASSERT_GE(engine.stats().kv.hibernatedSessions, 1u);
    const uint64_t wakes_before = engine.stats().kv.wakes;

    // model()/policy()/memoryStats() must transparently wake.
    EXPECT_GT(engine.model(a).cache().tokenCount(), 0u);
    EXPECT_NE(engine.memoryStats(a), nullptr);
    const serve::KvBudgetStats kv = engine.stats().kv;
    EXPECT_GT(kv.wakes, wakes_before);

    expectIdenticalRuns(
        engine.result(a),
        sequentialReplay(model, sa, spec, cfg.sessionSeed));
    engine.closeSession(a);
    engine.closeSession(b);
}

TEST(EngineHibernate, HibernatedSessionClosesWithoutWaking)
{
    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    cfg.kvBudget.budgetBytes = 1;
    serve::Engine engine(cfg);

    serve::SessionId a = engine.submit(randomVerbScript(8600, 0));
    engine.waitAll();
    serve::SessionId b = engine.submit(randomVerbScript(8700, 1));
    engine.waitAll();
    ASSERT_GE(engine.stats().kv.hibernatedSessions, 1u);
    const uint64_t wakes = engine.stats().kv.wakes;

    engine.closeSession(a);
    engine.closeSession(b);
    const serve::KvBudgetStats kv = engine.stats().kv;
    EXPECT_EQ(kv.wakes, wakes);           // Closing never wakes.
    EXPECT_EQ(kv.residentSessions, 0u);
    EXPECT_EQ(kv.hibernatedSessions, 0u);
    EXPECT_EQ(kv.coldBytes, 0u);          // Blobs are dropped.
}

TEST(EngineHibernate, DefaultBudgetChangesNothing)
{
    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    serve::Engine engine(cfg); // kvBudget.budgetBytes = 0 (default).

    serve::SessionId id = engine.submit(randomVerbScript(8800, 0));
    engine.waitAll();
    const serve::KvBudgetStats kv = engine.stats().kv;
    EXPECT_EQ(kv.budgetBytes, 0u);
    EXPECT_EQ(kv.hibernates, 0u);
    EXPECT_EQ(kv.wakes, 0u);
    EXPECT_EQ(kv.residentSessions, 0u); // No accounting at all.
    EXPECT_EQ(kv.residentBytes, 0u);
    EXPECT_EQ(kv.coldBytes, 0u);
    engine.closeSession(id);
}

TEST(EngineHibernate, OverSubscriptionStaysWithinBudget)
{
    const ModelConfig model = ModelConfig::tiny();
    const uint32_t kSessions = 40;

    // Price one session's working set, then grant a budget that fits
    // only ~2.5 of them: the engine must keep >90% hibernated.
    VideoConfig video;
    video.tokensPerFrame = 8;
    const std::vector<SessionEvent> events{
        {SessionEvent::Type::Frame, 0},
        {SessionEvent::Type::Question, 2},
        {SessionEvent::Type::Generate, 2}};
    uint64_t per_session;
    {
        StreamingSession probe(model, nullptr, 42);
        probe.begin("probe", video, 1);
        for (const SessionEvent &e : events)
            probe.apply(e);
        per_session = probe.kvBytes(2.0);
        ASSERT_GT(per_session, 0u);
    }

    serve::EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 2;
    cfg.kvBudget.budgetBytes = per_session * 5 / 2;
    serve::Engine engine(cfg);

    std::vector<serve::SessionId> ids;
    for (uint32_t s = 0; s < kSessions; ++s) {
        serve::SessionOptions o;
        o.name = "over-" + std::to_string(s);
        o.video = video;
        o.scriptSeed = 100 + s;
        serve::SessionId id = engine.createSession(o);
        engine.enqueue(id, events);
        ids.push_back(id);
        if ((s + 1) % 8 == 0)
            engine.waitAll();
    }
    engine.waitAll();

    const serve::KvBudgetStats kv = engine.stats().kv;
    EXPECT_EQ(kv.residentSessions + kv.hibernatedSessions, kSessions);
    // <10% resident: the budget fits 2.5 sessions out of 40.
    EXPECT_LT(kv.residentSessions * 10, kSessions);
    EXPECT_LE(kv.residentBytes, cfg.kvBudget.budgetBytes);
    EXPECT_GT(kv.coldBytes, 0u);

    // Sampled wakes still produce correct sessions.
    for (uint32_t s = 0; s < kSessions; s += 13) {
        const SessionRunResult r = engine.result(ids[s]);
        EXPECT_EQ(r.frames, 1u);
        EXPECT_EQ(r.generated.size(), 2u);
    }
    EXPECT_GT(engine.stats().kv.wakes, 0u);
    for (serve::SessionId id : ids)
        engine.closeSession(id);
}

TEST(EngineHibernate, FileColdStoreBackend)
{
    const std::string dir = ::testing::TempDir() + "/vrex-engine-cold-" +
        std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    auto store = std::make_shared<FileColdStore>(dir);

    const ModelConfig model = ModelConfig::tiny();
    serve::EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 1;
    cfg.kvBudget.budgetBytes = 1;
    cfg.kvBudget.store = store;
    serve::Engine engine(cfg);

    SessionScript sa = randomVerbScript(9100, 0);
    serve::SessionId a = engine.submit(sa);
    engine.waitAll();
    serve::SessionId b = engine.submit(randomVerbScript(9200, 1));
    engine.waitAll();

    // The hibernated session's blob is an actual file on disk.
    ASSERT_GE(engine.stats().kv.hibernatedSessions, 1u);
    EXPECT_GT(store->count(), 0u);
    EXPECT_GT(store->totalBytes(), 0u);

    expectIdenticalRuns(
        engine.result(a),
        sequentialReplay(model, sa, cfg.policy, cfg.sessionSeed));
    engine.closeSession(a);
    engine.closeSession(b);
    EXPECT_EQ(store->count(), 0u);
    std::filesystem::remove_all(dir);
}
