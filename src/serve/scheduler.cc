#include "serve/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace vrex::serve
{

Scheduler::Scheduler(ThreadPool &pool_ref, SchedulerConfig config,
                     Executor executor_fn, BatchConfig batch,
                     BatchExecutor batch_executor)
    : pool(pool_ref), cfg(config), executor(std::move(executor_fn)),
      batchExecutor(std::move(batch_executor)), planner(batch)
{
    VREX_ASSERT(executor != nullptr, "scheduler needs an executor");
    VREX_ASSERT(!planner.enabled() || batchExecutor != nullptr,
                "batching enabled without a batch executor");
    agg.config = cfg;
    classCredit = weightOf(classCursor);
}

uint32_t
Scheduler::weightOf(uint32_t cls_index) const
{
    // A zero weight would wedge the rotation; treat it as 1.
    return std::max(1u, cfg.classWeights[cls_index]);
}

Scheduler::Queue *
Scheduler::find(Key key)
{
    auto it = queues.find(key);
    return it == queues.end() ? nullptr : &it->second;
}

const Scheduler::Queue *
Scheduler::find(Key key) const
{
    auto it = queues.find(key);
    return it == queues.end() ? nullptr : &it->second;
}

bool
Scheduler::idleLocked(const Queue &q) const
{
    return !q.running && !q.pinned && q.pending.empty();
}

bool
Scheduler::tryAdmit(Key key, SchedClass cls, uint32_t rate_limit)
{
    LockGuard lock(mu);
    if (cfg.maxLiveSessions > 0 &&
        queues.size() >= cfg.maxLiveSessions) {
        ++agg.rejectedAdmissions;
        return false;
    }
    VREX_ASSERT(queues.find(key) == queues.end(),
                "scheduler key admitted twice");
    Queue q;
    q.cls = cls;
    q.rateLimit = rate_limit;
    q.stats.schedClass = cls;
    q.stats.rateLimit = rate_limit;
    queues.emplace(key, std::move(q));
    ++agg.admitted;
    agg.maxLiveObserved = std::max(
        agg.maxLiveObserved, static_cast<uint32_t>(queues.size()));
    return true;
}

bool
Scheduler::setClass(Key key, SchedClass cls)
{
    LockGuard lock(mu);
    Queue *q = find(key);
    if (!q)
        return false;
    if (q->cls != cls) {
        if (q->ready) {
            auto &old_list =
                readyKeys[static_cast<size_t>(q->cls)];
            old_list.erase(std::find_if(
                old_list.begin(), old_list.end(),
                [key](const ReadyEntry &e) { return e.key == key; }));
            readyKeys[static_cast<size_t>(cls)].push_back({key, q});
        }
        q->cls = cls;
        q->stats.schedClass = cls;
    }
    return true;
}

Scheduler::Queue *
Scheduler::waitIdleLocked(UniqueLock &lock, Key key)
{
    // Inline predicate loop (not a wait-lambda): the guarded reads
    // must happen in this function's scope for the thread-safety
    // analysis to see the lock held.
    for (;;) {
        Queue *q = find(key);
        if (!q || idleLocked(*q))
            return q;
        cv.wait(lock);
    }
}

bool
Scheduler::remove(Key key)
{
    UniqueLock lock(mu);
    if (!waitIdleLocked(lock, key))
        return false;
    queues.erase(key);
    // Wake peers blocked on this key so they observe the removal.
    cv.notify_all();
    return true;
}

EnqueueResult
Scheduler::tryEnqueue(Key key,
                      const std::vector<SessionEvent> &events)
{
    // Events are *counted* in unit work items but stored compressed
    // (one entry per event): a Generate{1e6} costs one queue slot of
    // memory yet weighs 1e6 against the bound, so backpressure kicks
    // in before any expansion-sized allocation could happen.
    EnqueueResult r;
    uint64_t units = 0;
    for (const SessionEvent &event : events)
        units += event.unitCount();
    r.items = static_cast<uint32_t>(units);

    LockGuard lock(mu);
    Queue *q = find(key);
    if (!q)
        throw std::out_of_range(
            "vrex::serve::Scheduler: unknown or closed session id " +
            std::to_string(key));
    if (units == 0) {
        r.depth = q->stats.depth;
        return r; // Nothing to do (empty or all Generate{0}).
    }

    const uint32_t depth = q->stats.depth;
    if (cfg.maxQueuedPerSession > 0 &&
        depth + units > cfg.maxQueuedPerSession) {
        q->stats.itemsRejected += units;
        agg.itemsRejected += units;
        r.status = EnqueueResult::Status::RejectedQueueFull;
        r.depth = depth;
        return r;
    }

    for (const SessionEvent &event : events)
        if (event.unitCount() > 0)
            q->pending.push_back({event, dispatches});
    r.depth = static_cast<uint32_t>(depth + units);
    q->stats.itemsEnqueued += units;
    agg.itemsEnqueued += units;
    q->stats.depth = r.depth;
    q->stats.maxDepth = std::max(q->stats.maxDepth, r.depth);
    agg.maxQueueDepth = std::max(agg.maxQueueDepth, r.depth);

    if (!q->running && !q->pinned && !q->ready)
        makeReadyLocked(key, *q);
    return r;
}

void
Scheduler::makeReadyLocked(Key key, Queue &q)
{
    q.ready = true;
    q.readyMark = dispatches;
    q.readyAt = Clock::now();
    readyKeys[static_cast<size_t>(q.cls)].push_back({key, &q});
    if (paused)
        ++unsubmitted;
    else
        submitSliceJob();
}

Scheduler::ReadyEntry
Scheduler::popReadyLocked()
{
    // Weighted round-robin over the class ready lists: the cursor
    // class keeps the turn while it has credit and work. Ready work
    // dispatches on credit; when the turn class is *busy but not
    // ready* (every ready-capable session mid-slice on another
    // worker), the slice is loaned to the next class with ready
    // work — consuming no credit and leaving the rotation in place,
    // so work conservation does not degrade the weights. A class
    // with neither ready nor in-flight work passes the turn on with
    // a fresh credit. Two sweeps guarantee a non-empty class is
    // reached even when every credit needs resetting first.
    uint32_t pick_class = classCursor;
    bool on_credit = true;
    for (uint32_t step = 0; step < 2 * kSchedClasses; ++step) {
        if (classCredit > 0) {
            if (!readyKeys[classCursor].empty()) {
                pick_class = classCursor;
                break;
            }
            if (inFlight[classCursor] > 0) {
                bool found = false;
                for (uint32_t off = 1; off < kSchedClasses; ++off) {
                    const uint32_t c =
                        (classCursor + off) % kSchedClasses;
                    if (!readyKeys[c].empty()) {
                        pick_class = c;
                        on_credit = false;
                        found = true;
                        break;
                    }
                }
                // One job per ready entry: if the turn class has
                // nothing ready, some other class must.
                VREX_ASSERT(found, "slice job without ready key");
                break;
            }
        }
        classCursor = (classCursor + 1) % kSchedClasses;
        classCredit = weightOf(classCursor);
        pick_class = classCursor;
    }
    auto &list = readyKeys[pick_class];
    VREX_ASSERT(!list.empty(), "slice job without ready key");
    if (on_credit) {
        VREX_ASSERT(classCredit > 0, "WRR pick without credit");
        --classCredit;
    }

    // Deadline-aware slicing: serve the class FIFO unless a queue's
    // oldest pending item has aged past the deadline — then the
    // most-overdue queue (smallest enqueue mark; ties keep list
    // order) is promoted to dispatch now.
    size_t pick = 0;
    if (cfg.deadlineSlices > 0) {
        uint64_t best_mark = ~uint64_t{0};
        for (size_t i = 0; i < list.size(); ++i) {
            const Queue *q = list[i].queue;
            VREX_ASSERT(!q->pending.empty(),
                        "ready key without pending work");
            const uint64_t mark = q->pending.front().mark;
            if (dispatches - mark > cfg.deadlineSlices &&
                mark < best_mark) {
                best_mark = mark;
                pick = i;
            }
        }
    }
    const ReadyEntry entry = list[pick];
    if (pick != 0) {
        ++entry.queue->stats.deadlinePromotions;
        ++agg.classes[pick_class].deadlinePromotions;
        list.erase(list.begin() + static_cast<ptrdiff_t>(pick));
    } else {
        list.pop_front();
    }
    return entry;
}

void
Scheduler::submitSliceJob()
{
    pool.submit([this] { runSlice(); });
}

void
Scheduler::accountDispatchLocked(Queue &q)
{
    ClassStats &cs = agg.classes[static_cast<size_t>(q.cls)];
    const uint64_t waited = dispatches - q.readyMark;
    ++dispatches;
    q.stats.maxWaitSlices = std::max(q.stats.maxWaitSlices, waited);
    agg.maxWaitSlices = std::max(agg.maxWaitSlices, waited);
    const auto wait_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - q.readyAt)
            .count());
    q.stats.waitNs += wait_ns;
    agg.waitNs += wait_ns;
    q.stats.maxWaitNs = std::max(q.stats.maxWaitNs, wait_ns);
    agg.maxWaitNs = std::max(agg.maxWaitNs, wait_ns);
    q.stats.waitHist.add(wait_ns);
    cs.wait.add(wait_ns);
}

void
Scheduler::takeGenerateUnitLocked(Queue &q)
{
    Pending &front = q.pending.front();
    VREX_ASSERT(front.event.type == SessionEvent::Type::Generate &&
                    front.event.tokens >= 1,
                "fused-step member without Generate work");
    if (front.event.tokens > 1)
        front.event.tokens -= 1;
    else
        q.pending.pop_front();
    q.stats.depth -= 1;
    q.sliceUnits = 1;
    // Note: the one-unit clamp here comes from batching, not the
    // session's rate limit — rateLimitedSlices stays untouched.
}

void
Scheduler::claimBatchPeersLocked(SchedClass primary_cls,
                                 std::vector<Key> &member_keys,
                                 std::vector<Queue *> &member_queues,
                                 std::vector<SchedClass> &member_cls)
{
    // First pass: count eligible ready peers (capped at what a full
    // fused step could use) so the planner can veto a below-minimum
    // step before any ready-list surgery happens.
    const uint32_t want = planner.config().maxBatch - 1;
    const auto primary = static_cast<uint32_t>(primary_cls);
    uint32_t eligible = 0;
    for (uint32_t off = 0;
         off < kSchedClasses && eligible < want; ++off) {
        const auto &list = readyKeys[(primary + off) % kSchedClasses];
        for (const ReadyEntry &entry : list) {
            if (eligible >= want)
                break;
            if (BatchPlanner::eligible(entry.queue->pending.front()
                                           .event))
                ++eligible;
        }
    }
    const uint32_t members = planner.planStepSize(eligible);
    if (members < 2)
        return;

    // Second pass: claim the same peers in the same scan order.
    // Claimed peers get the full solo-dispatch accounting; their
    // already-submitted pool jobs are absorbed (each will return
    // without popping — one ready entry just disappeared per claim).
    uint32_t needed = members - 1;
    for (uint32_t off = 0;
         off < kSchedClasses && needed > 0; ++off) {
        auto &list = readyKeys[(primary + off) % kSchedClasses];
        for (auto it = list.begin();
             it != list.end() && needed > 0;) {
            Queue *pq = it->queue;
            if (!BatchPlanner::eligible(
                    pq->pending.front().event)) {
                ++it;
                continue;
            }
            VREX_ASSERT(pq->ready && !pq->running && !pq->pinned,
                        "ready key in inconsistent state");
            pq->ready = false;
            pq->running = true;
            const SchedClass pcls = pq->cls;
            ++inFlight[static_cast<size_t>(pcls)];
            accountDispatchLocked(*pq);
            takeGenerateUnitLocked(*pq);
            ++absorbed;
            member_keys.push_back(it->key);
            member_queues.push_back(pq);
            member_cls.push_back(pcls);
            it = list.erase(it);
            --needed;
        }
    }
    VREX_ASSERT(needed == 0, "planned fused step lost its peers");
}

void
Scheduler::finalizeSliceLocked(Key key, Queue &q, SchedClass cls,
                               uint64_t service_ns)
{
    q.running = false;
    --inFlight[static_cast<size_t>(cls)];
    ++q.stats.slices;
    ++agg.slices;
    q.stats.itemsExecuted += q.sliceUnits;
    agg.itemsExecuted += q.sliceUnits;
    q.stats.serviceNs += service_ns;
    agg.serviceNs += service_ns;
    q.stats.serviceHist.add(service_ns);
    ClassStats &cs = agg.classes[static_cast<size_t>(cls)];
    ++cs.slices;
    cs.itemsExecuted += q.sliceUnits;
    cs.service.add(service_ns);
    if (!q.pending.empty())
        makeReadyLocked(key, q); // Rotate to the back: fairness.
}

void
Scheduler::runSlice()
{
    std::vector<SessionEvent> batch;
    std::vector<Key> member_keys;
    std::vector<Queue *> member_queues;
    std::vector<SchedClass> member_cls;
    Key key;
    Queue *q;
    SchedClass cls;
    {
        LockGuard lock(mu);
        // A fused step claimed a ready entry this job was submitted
        // for; the claiming slice already dispatched that work.
        if (absorbed > 0) {
            --absorbed;
            return;
        }
        // One job per ready entry: a ready key always exists.
        const ReadyEntry entry = popReadyLocked();
        key = entry.key;
        q = entry.queue;
        VREX_ASSERT(q->ready && !q->running && !q->pinned,
                    "ready key in inconsistent state");
        q->ready = false;
        q->running = true;
        cls = q->cls; // Sample under the dispatching class, even if
                      // setClass() retags the session mid-slice.
        ++inFlight[static_cast<size_t>(cls)];
        accountDispatchLocked(*q);

        // Fused dispatch: when enabled and this queue's next item is
        // a Generate step, claim eligible ready peers into one fused
        // generation step of exactly one unit per member. Never while
        // paused: paused ready entries carry no pool jobs, so a claim
        // would starve them of their job on resume(). The primary
        // forgoes the rest of its slice budget — its remainder
        // re-readies and rotates like any other unfinished slice.
        if (planner.enabled() && !paused &&
            BatchPlanner::eligible(q->pending.front().event)) {
            claimBatchPeersLocked(cls, member_keys, member_queues,
                                  member_cls);
        }
        if (!member_keys.empty()) {
            takeGenerateUnitLocked(*q);
            member_keys.insert(member_keys.begin(), key);
            member_queues.insert(member_queues.begin(), q);
            member_cls.insert(member_cls.begin(), cls);
        } else {
            ClassStats &cs = agg.classes[static_cast<size_t>(cls)];
            // Take up to sliceEvents *units* — clamped by the
            // session's rate limit — splitting a Generate run at the
            // slice boundary (Generate{n} == n single steps, so the
            // split is byte-identical).
            uint64_t budget = cfg.sliceEvents > 0 ? cfg.sliceEvents
                                                  : q->stats.depth;
            if (q->rateLimit > 0 && budget > q->rateLimit) {
                budget = q->rateLimit;
                if (q->stats.depth > q->rateLimit) {
                    // The cap left work queued: the session was rate
                    // limited this rotation turn.
                    ++q->stats.rateLimitedSlices;
                    ++cs.rateLimitedSlices;
                }
            }
            while (budget > 0 && !q->pending.empty()) {
                Pending &front = q->pending.front();
                const uint32_t units = front.event.unitCount();
                if (units > budget) {
                    const auto take = static_cast<uint32_t>(budget);
                    batch.push_back(
                        {SessionEvent::Type::Generate, take});
                    front.event.tokens -= take;
                    budget = 0;
                } else {
                    batch.push_back(front.event);
                    q->pending.pop_front();
                    budget -= units;
                }
            }
            uint64_t batch_units = 0;
            for (const SessionEvent &event : batch)
                batch_units += event.unitCount();
            q->stats.depth -= static_cast<uint32_t>(batch_units);
            q->sliceUnits = batch_units;
            if (planner.enabled()) {
                uint64_t gen_units = 0;
                for (const SessionEvent &event : batch)
                    if (event.type == SessionEvent::Type::Generate)
                        gen_units += event.unitCount();
                if (gen_units > 0)
                    planner.recordSolo(gen_units);
            }
        }
    }

    if (!member_keys.empty()) {
        // Exclusive access to every member: each one's `running`
        // stays true until the locked block below.
        const Clock::time_point t0 = Clock::now();
        batchExecutor(member_keys);
        const auto service_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());

        LockGuard lock(mu);
        // Each member experienced the fused step's full wall time;
        // it is merged into every member's service accounting (so
        // aggregate serviceNs still equals the per-queue sum).
        for (size_t i = 0; i < member_keys.size(); ++i)
            finalizeSliceLocked(member_keys[i], *member_queues[i],
                                member_cls[i], service_ns);
        planner.recordCoalesced(
            static_cast<uint32_t>(member_keys.size()));
        cv.notify_all();
        return;
    }

    // Exclusive access: `running` stays true until the locked block
    // below, so no other worker (or pin holder) touches the session.
    const Clock::time_point t0 = Clock::now();
    executor(key, batch);
    const auto service_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());

    {
        LockGuard lock(mu);
        // `q` stays valid: remove() cannot erase a running queue.
        finalizeSliceLocked(key, *q, cls, service_ns);
        cv.notify_all();
    }
}

bool
Scheduler::wait(Key key)
{
    UniqueLock lock(mu);
    return waitIdleLocked(lock, key) != nullptr;
}

void
Scheduler::waitAll()
{
    UniqueLock lock(mu);
    for (;;) {
        bool all_idle = true;
        for (const auto &[key, q] : queues) {
            if (!idleLocked(q)) {
                all_idle = false;
                break;
            }
        }
        if (all_idle)
            return;
        cv.wait(lock);
    }
}

bool
Scheduler::pinWhenIdle(Key key)
{
    UniqueLock lock(mu);
    Queue *q = waitIdleLocked(lock, key);
    if (!q)
        return false;
    q->pinned = true;
    return true;
}

bool
Scheduler::tryPinIdle(Key key)
{
    LockGuard lock(mu);
    Queue *q = find(key);
    if (!q || !idleLocked(*q))
        return false;
    q->pinned = true;
    return true;
}

void
Scheduler::unpin(Key key)
{
    LockGuard lock(mu);
    Queue *q = find(key);
    VREX_ASSERT(q && q->pinned, "unpin without a matching pin");
    q->pinned = false;
    // Events enqueued while pinned were not scheduled; catch up.
    if (!q->pending.empty() && !q->ready)
        makeReadyLocked(key, *q);
    cv.notify_all();
}

void
Scheduler::pause()
{
    LockGuard lock(mu);
    paused = true;
}

void
Scheduler::resume()
{
    LockGuard lock(mu);
    if (!paused)
        return;
    paused = false;
    for (; unsubmitted > 0; --unsubmitted)
        submitSliceJob();
}

Stats
Scheduler::stats() const
{
    LockGuard lock(mu);
    Stats out = agg;
    out.liveSessions = static_cast<uint32_t>(queues.size());
    out.wrrTurnClass = static_cast<SchedClass>(classCursor);
    out.wrrTurnCredit = classCredit;
    out.batch = planner.stats();
    return out;
}

QueueStats
Scheduler::queueStats(Key key) const
{
    LockGuard lock(mu);
    const Queue *q = find(key);
    if (!q)
        throw std::out_of_range(
            "vrex::serve::Scheduler: unknown or closed session id " +
            std::to_string(key));
    return q->stats;
}

} // namespace vrex::serve
