#include "kvstore/cluster_layout.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vrex
{

void
ClusterLayout::rebuild(const std::vector<std::vector<uint32_t>> &clusters,
                       uint32_t total_tokens)
{
    position.assign(total_tokens, UINT32_MAX);
    uint32_t slot = 0;
    for (const auto &members : clusters) {
        for (uint32_t token : members) {
            VREX_ASSERT(token < total_tokens,
                        "cluster member out of range");
            if (position[token] == UINT32_MAX)
                position[token] = slot++;
        }
    }
    for (uint32_t t = 0; t < total_tokens; ++t)
        if (position[t] == UINT32_MAX)
            position[t] = slot++;
}

uint32_t
ClusterLayout::positionOf(uint32_t token) const
{
    if (token >= position.size())
        return token;  // Identity beyond the rebuilt range.
    return position[token];
}

uint32_t
ClusterLayout::runsForSelection(const std::vector<uint32_t> &tokens) const
{
    if (tokens.empty())
        return 0;
    std::vector<uint32_t> slots;
    slots.reserve(tokens.size());
    for (uint32_t t : tokens)
        slots.push_back(positionOf(t));
    std::sort(slots.begin(), slots.end());
    uint32_t runs = 1;
    for (size_t i = 1; i < slots.size(); ++i)
        runs += slots[i] != slots[i - 1] + 1;
    return runs;
}

uint32_t
ClusterLayout::runsTimeOrder(const std::vector<uint32_t> &sorted_tokens)
{
    if (sorted_tokens.empty())
        return 0;
    uint32_t runs = 1;
    for (size_t i = 1; i < sorted_tokens.size(); ++i)
        runs += sorted_tokens[i] != sorted_tokens[i - 1] + 1;
    return runs;
}

} // namespace vrex
