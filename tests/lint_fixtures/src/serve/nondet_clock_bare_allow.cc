// Fixture: an allow() with no justification is rejected — the
// suppression does NOT take effect (nondet-clock still fires) and the
// bare directive is itself reported (allow-syntax).
#include <chrono>

long
now()
{
    // vrex-lint: allow(nondet-clock)
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
