/**
 * @file
 * Functional end-to-end streaming video LLM session: video latents ->
 * vision tower -> projector -> iterative prefill -> question prefill
 * -> generation, under any retrieval policy. Collects the selection
 * ratios that Table II and Fig. 20 report.
 */

#ifndef VREX_PIPELINE_STREAMING_SESSION_HH
#define VREX_PIPELINE_STREAMING_SESSION_HH

#include <cstdint>
#include <vector>

#include "llm/model.hh"
#include "video/vision_tower.hh"
#include "video/workload.hh"

namespace vrex
{

/** Aggregated results of one scripted session. */
struct SessionRunResult
{
    std::vector<uint32_t> generated;
    /** Full logits at every generation step (fidelity scoring). */
    std::vector<std::vector<float>> stepLogits;
    /** Mean selected-token ratio during frame processing. */
    double frameRatio = 1.0;
    /** Mean selected-token ratio during question/generation. */
    double textRatio = 1.0;
    /** Mean ratio per [layer][kvHead] (blocks with a past only). */
    std::vector<std::vector<double>> layerHeadRatio;
    uint32_t totalTokens = 0;
    uint32_t frames = 0;
};

/** Drives a Model + vision stack through a SessionScript. */
class StreamingSession
{
  public:
    /**
     * @param model_config The backbone geometry (functional sizes).
     * @param policy       Retrieval policy; nullptr = full attention.
     * @param seed         Master seed (weights + video + questions).
     */
    StreamingSession(const ModelConfig &model_config,
                     SelectionPolicy *policy, uint64_t seed);

    /** Run a scripted session from an empty cache. */
    SessionRunResult run(const SessionScript &script);

    /**
     * Run with teacher forcing: generation steps consume
     * @p forced_tokens instead of the model's own argmax; the i-th
     * argmax is recorded in the result for agreement scoring.
     */
    SessionRunResult run(const SessionScript &script,
                         const std::vector<uint32_t> &forced_tokens);

    Model &model() { return llm; }

  private:
    uint64_t seed;
    Model llm;

    void accumulate(const BlockStats &stats, SessionRunResult &out,
                    std::vector<std::vector<double>> &sums,
                    uint32_t &ratio_blocks, double &frame_sum,
                    uint32_t &frame_n, double &text_sum,
                    uint32_t &text_n) const;
};

} // namespace vrex

#endif // VREX_PIPELINE_STREAMING_SESSION_HH
