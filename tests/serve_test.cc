/**
 * @file
 * Serving-layer tests: PolicySpec/PolicyFactory round-trips, the
 * Engine session lifecycle, session isolation, and the headline
 * guarantee — an N-way concurrent engine run is byte-identical to N
 * sequential StreamingSession runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/resv.hh"
#include "pipeline/accuracy_eval.hh"
#include "pipeline/memory_driver.hh"
#include "pipeline/streaming_session.hh"
#include "retrieval/policies.hh"
#include "serve/engine.hh"
#include "serve/policy_factory.hh"
#include "serve/thread_pool.hh"

using namespace vrex;
using namespace vrex::serve;

namespace
{

SessionScript
shortScript(uint64_t seed, uint32_t frames = 8)
{
    SessionScript s = WorkloadGenerator::coinAverage(seed);
    s.events.clear();
    for (uint32_t f = 0; f < frames; ++f)
        s.events.push_back({SessionEvent::Type::Frame, 0});
    s.events.push_back({SessionEvent::Type::Question, 6});
    s.events.push_back({SessionEvent::Type::Generate, 5});
    return s;
}

/** Every non-Full spec kind, with distinguishable parameters. */
std::vector<PolicySpec>
specZoo()
{
    ResvConfig rc;
    rc.thrWics = 0.4f;
    return {
        PolicySpec::full(),          PolicySpec::flexgen(),
        PolicySpec::infinigen(0.4f), PolicySpec::infinigenP(0.6f),
        PolicySpec::rekv(0.3f),      PolicySpec::resv(rc),
    };
}

/** Exact structural equality of two run results. */
void
expectIdenticalRuns(const SessionRunResult &a, const SessionRunResult &b)
{
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.stepLogits, b.stepLogits);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.totalTokens, b.totalTokens);
    EXPECT_DOUBLE_EQ(a.frameRatio, b.frameRatio);
    EXPECT_DOUBLE_EQ(a.textRatio, b.textRatio);
    EXPECT_EQ(a.layerHeadRatio, b.layerHeadRatio);
}

} // namespace

// ---------------------------------------------------------------
// PolicyFactory
// ---------------------------------------------------------------

TEST(PolicyFactory, KindNamesRoundTrip)
{
    for (PolicyKind kind : allPolicyKinds()) {
        auto parsed = parsePolicyKind(policyKindName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(parsePolicyKind("no-such-policy").has_value());
}

TEST(PolicyFactory, BuildsEveryKindOwned)
{
    ModelConfig cfg = ModelConfig::tiny();
    for (const PolicySpec &spec : specZoo()) {
        PolicyInstance inst = makePolicy(cfg, spec);
        EXPECT_EQ(inst.kind(), spec.kind);
        ASSERT_NE(inst.basePolicy(), nullptr)
            << policyKindName(spec.kind);
        EXPECT_EQ(inst.active(), inst.basePolicy());
        EXPECT_EQ(inst.memory(), nullptr);
        // Kind-specific dynamic types and parameter plumbing.
        switch (spec.kind) {
          case PolicyKind::Full:
            EXPECT_NE(dynamic_cast<FullAttentionPolicy *>(
                          inst.basePolicy()), nullptr);
            break;
          case PolicyKind::FlexGen:
            EXPECT_NE(dynamic_cast<FlexGenPolicy *>(
                          inst.basePolicy()), nullptr);
            break;
          case PolicyKind::InfiniGen:
          case PolicyKind::InfiniGenP: {
            auto *p = dynamic_cast<InfiniGenPolicy *>(
                inst.basePolicy());
            ASSERT_NE(p, nullptr);
            EXPECT_FLOAT_EQ(p->config().ratio, spec.ratio);
            EXPECT_EQ(p->config().prefill,
                      spec.kind == PolicyKind::InfiniGenP);
            break;
          }
          case PolicyKind::ReKV:
            EXPECT_NE(dynamic_cast<ReKVPolicy *>(inst.basePolicy()),
                      nullptr);
            break;
          case PolicyKind::ReSV: {
            ASSERT_NE(inst.resv(), nullptr);
            EXPECT_EQ(inst.resv(), inst.basePolicy());
            EXPECT_FLOAT_EQ(inst.resv()->config().thrWics, 0.4f);
            break;
          }
        }
        if (spec.kind != PolicyKind::ReSV) {
            EXPECT_EQ(inst.resv(), nullptr);
        }
    }
}

TEST(PolicyFactory, MemoryTrackingDecoration)
{
    ModelConfig cfg = ModelConfig::tiny();
    TierConfig tiers;
    tiers.deviceKvCapacityBytes = 16 * cfg.kvBytesPerToken(2.0);
    PolicySpec spec = PolicySpec::resv().withMemoryTracking(tiers);
    EXPECT_TRUE(spec.trackMemory);

    PolicyInstance inst = makePolicy(cfg, spec);
    ASSERT_NE(inst.memory(), nullptr);
    EXPECT_EQ(inst.active(),
              static_cast<SelectionPolicy *>(inst.memory()));
    EXPECT_NE(inst.resv(), nullptr);

    // The decorated stack drives a session and fills replay stats
    // identically to hand-wired MemoryTrackingPolicy + ResvPolicy.
    SessionScript script = shortScript(31);
    StreamingSession via_factory(cfg, inst.active(), 42);
    SessionRunResult r1 = via_factory.run(script);

    ResvPolicy resv(cfg, spec.resvCfg);
    MemoryTrackingPolicy tracked(&resv, cfg, tiers);
    tracked.setClusterSource(&resv);
    StreamingSession by_hand(cfg, &tracked, 42);
    SessionRunResult r2 = by_hand.run(script);

    expectIdenticalRuns(r1, r2);
    const MemoryReplayStats &s1 = inst.memory()->stats();
    const MemoryReplayStats &s2 = tracked.stats();
    EXPECT_GT(s1.fetchedBytes, 0u);
    EXPECT_EQ(s1.fetchedBytes, s2.fetchedBytes);
    EXPECT_EQ(s1.offloadedBytes, s2.offloadedBytes);
    EXPECT_EQ(s1.runsTimeOrder, s2.runsTimeOrder);
    EXPECT_EQ(s1.runsClustered, s2.runsClustered);
}

TEST(PolicyFactory, FullPolicyMatchesNullPolicy)
{
    ModelConfig cfg = ModelConfig::tiny();
    SessionScript script = shortScript(32);

    StreamingSession null_policy(cfg, nullptr, 42);
    SessionRunResult r_null = null_policy.run(script);

    PolicyInstance inst = makePolicy(cfg, PolicySpec::full());
    StreamingSession full_policy(cfg, inst.active(), 42);
    SessionRunResult r_full = full_policy.run(script);

    expectIdenticalRuns(r_null, r_full);
}

TEST(PolicyFactory, ResetAfterReuseMatchesFresh)
{
    // evaluateFidelity() reuses one policy object across the
    // reference and test runs, resetting in between; the factory
    // builds a fresh object per session. Both must coincide, i.e.
    // reset() has to restore construction state for every kind.
    ModelConfig cfg = ModelConfig::tiny();
    SessionScript script = shortScript(33);
    for (const PolicySpec &spec : specZoo()) {
        PolicyInstance reused = makePolicy(cfg, spec);
        FidelityResult first = evaluateFidelity(
            cfg, script, reused.basePolicy(), 42);
        FidelityResult again = evaluateFidelity(
            cfg, script, reused.basePolicy(), 42);
        FidelityResult fresh = evaluateFidelity(
            cfg, script, makePolicy(cfg, spec).basePolicy(), 42);
        EXPECT_DOUBLE_EQ(again.tokenAgreement, first.tokenAgreement)
            << policyKindName(spec.kind);
        EXPECT_DOUBLE_EQ(again.logitCosine, first.logitCosine)
            << policyKindName(spec.kind);
        EXPECT_DOUBLE_EQ(fresh.frameRatio, first.frameRatio)
            << policyKindName(spec.kind);
        EXPECT_DOUBLE_EQ(fresh.textRatio, first.textRatio)
            << policyKindName(spec.kind);
        EXPECT_DOUBLE_EQ(fresh.logitCosine, first.logitCosine)
            << policyKindName(spec.kind);
    }
}

// ---------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> counter{0};
    {
        ThreadPool inner(3);
        for (int i = 0; i < 100; ++i)
            inner.submit([&counter] { ++counter; });
        // ~ThreadPool drains before joining.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ResolveWorkerCount)
{
    EXPECT_EQ(resolveWorkerCount(3), 3u);
    EXPECT_GE(resolveWorkerCount(0), 2u);
    EXPECT_LE(resolveWorkerCount(0), 8u);
}

// ---------------------------------------------------------------
// Engine
// ---------------------------------------------------------------

TEST(ServeEngine, LifecycleVerbsMatchScriptedRun)
{
    // createSession + feedFrame + ask == one scripted run.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = PolicySpec::resv();
    cfg.workers = 2;
    Engine engine(cfg);

    SessionScript script = shortScript(40);
    SessionOptions opts = SessionOptions::fromScript(script);
    SessionId id = engine.createSession(opts);
    engine.feedFrame(id, 8);
    engine.ask(id, 6, 5);
    SessionRunResult via_verbs = engine.result(id);
    engine.closeSession(id);
    EXPECT_EQ(engine.openSessions(), 0u);

    PolicyInstance inst = makePolicy(cfg.model, cfg.policy);
    StreamingSession seq(cfg.model, inst.active(), 42);
    expectIdenticalRuns(via_verbs, seq.run(script));
}

TEST(ServeEngine, ConcurrentMatchesSequential)
{
    // The acceptance guarantee: N concurrent sessions, mixed tasks
    // and policies, on a real worker pool — byte-identical to N
    // sequential StreamingSession runs.
    const std::vector<PolicySpec> specs = specZoo();
    std::vector<SessionScript> scripts;
    for (size_t i = 0; i < specs.size(); ++i) {
        SessionScript s = shortScript(50 + i, 6 + (i % 3));
        s.task = allCoinTasks()[i % allCoinTasks().size()];
        s.name = "concurrent-" + std::to_string(i);
        scripts.push_back(s);
    }

    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 4;
    Engine engine(cfg);

    std::vector<SessionId> ids;
    for (size_t i = 0; i < scripts.size(); ++i) {
        SessionOptions o = SessionOptions::fromScript(scripts[i]);
        o.policy = specs[i];
        o.sessionSeed = 1000 + i;
        ids.push_back(engine.submit(scripts[i], o));
    }

    for (size_t i = 0; i < scripts.size(); ++i) {
        SessionRunResult concurrent = engine.result(ids[i]);
        engine.closeSession(ids[i]);

        PolicyInstance inst = makePolicy(cfg.model, specs[i]);
        StreamingSession seq(cfg.model, inst.active(), 1000 + i);
        SessionRunResult sequential = seq.run(scripts[i]);
        expectIdenticalRuns(concurrent, sequential);
    }
}

TEST(ServeEngine, InterleavedSessionsAreIsolated)
{
    // Feeding two sessions turn by turn must not perturb either:
    // each result matches its own isolated sequential run.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    Engine engine(cfg);

    SessionScript sa = shortScript(60), sb = shortScript(61);
    sb.video.sceneCutProb = 0.3;  // Different stream statistics.
    SessionOptions oa = SessionOptions::fromScript(sa);
    oa.policy = PolicySpec::resv();
    SessionOptions ob = SessionOptions::fromScript(sb);
    ob.policy = PolicySpec::infinigenP(0.5f);
    SessionId a = engine.createSession(oa);
    SessionId b = engine.createSession(ob);

    for (int round = 0; round < 4; ++round) {
        engine.feedFrame(a, 2);
        engine.feedFrame(b, 2);
    }
    engine.ask(a, 6, 5);
    engine.ask(b, 6, 5);
    SessionRunResult ra = engine.result(a);
    SessionRunResult rb = engine.result(b);
    engine.closeSession(a);
    engine.closeSession(b);

    PolicyInstance pa = makePolicy(cfg.model, *oa.policy);
    StreamingSession ia(cfg.model, pa.active(), 42);
    expectIdenticalRuns(ra, ia.run(sa));

    PolicyInstance pb = makePolicy(cfg.model, *ob.policy);
    StreamingSession ib(cfg.model, pb.active(), 42);
    expectIdenticalRuns(rb, ib.run(sb));
}

TEST(ServeEngine, ResultIsIncrementalAndRepeatable)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    Engine engine(cfg);

    SessionId id = engine.createSession();
    engine.feedFrame(id, 4);
    SessionRunResult mid = engine.result(id);
    EXPECT_EQ(mid.frames, 4u);
    EXPECT_TRUE(mid.generated.empty());

    engine.feedFrame(id, 4);
    engine.ask(id, 6, 5);
    SessionRunResult done = engine.result(id);
    EXPECT_EQ(done.frames, 8u);
    EXPECT_EQ(done.generated.size(), 5u);
    // result() drains without consuming: calling it again is stable.
    expectIdenticalRuns(done, engine.result(id));
    engine.closeSession(id);
}

TEST(ServeEngine, UnknownOrClosedSessionThrows)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    Engine engine(cfg);
    EXPECT_THROW(engine.result(999), std::out_of_range);

    SessionId id = engine.createSession();
    engine.closeSession(id);
    EXPECT_THROW(engine.feedFrame(id), std::out_of_range);
    EXPECT_THROW(engine.closeSession(id), std::out_of_range);
}

TEST(ServeEngine, FidelityMatchesPipelineEvaluator)
{
    ModelConfig model = ModelConfig::tiny();
    SessionScript script = shortScript(70);

    EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 2;
    cfg.sessionSeed = 42;
    Engine engine(cfg);

    for (const PolicySpec &spec :
         {PolicySpec::resv(), PolicySpec::infinigenP(0.5f)}) {
        FidelityResult via_engine =
            engine.evaluateFidelity(script, spec);
        PolicyInstance inst = makePolicy(model, spec);
        FidelityResult via_pipeline =
            evaluateFidelity(model, script, inst.basePolicy(), 42);
        EXPECT_DOUBLE_EQ(via_engine.tokenAgreement,
                         via_pipeline.tokenAgreement);
        EXPECT_DOUBLE_EQ(via_engine.logitCosine,
                         via_pipeline.logitCosine);
        EXPECT_DOUBLE_EQ(via_engine.frameRatio,
                         via_pipeline.frameRatio);
        EXPECT_DOUBLE_EQ(via_engine.textRatio,
                         via_pipeline.textRatio);
        EXPECT_EQ(via_engine.steps, via_pipeline.steps);
    }
}

TEST(ServeEngine, FidelityBatchMatchesSequentialCalls)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 4;
    Engine engine(cfg);

    std::vector<FidelityJob> jobs;
    for (uint64_t seed : {80u, 81u})
        for (const PolicySpec &spec :
             {PolicySpec::resv(), PolicySpec::rekv(0.5f)})
            jobs.push_back({shortScript(seed), spec});

    std::vector<FidelityResult> batch =
        engine.evaluateFidelityBatch(jobs);
    ASSERT_EQ(batch.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        FidelityResult single =
            engine.evaluateFidelity(jobs[i].script, jobs[i].policy);
        EXPECT_DOUBLE_EQ(batch[i].tokenAgreement,
                         single.tokenAgreement);
        EXPECT_DOUBLE_EQ(batch[i].logitCosine, single.logitCosine);
        EXPECT_DOUBLE_EQ(batch[i].frameRatio, single.frameRatio);
        EXPECT_DOUBLE_EQ(batch[i].textRatio, single.textRatio);
    }
}

TEST(ServeEngine, ConcurrentWaitersAndCloseAreSafe)
{
    // Several threads blocking in result()/wait() while another
    // closes the session must either get the (identical) result or
    // a clean out_of_range — never touch freed session state.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    Engine engine(cfg);

    for (int round = 0; round < 5; ++round) {
        SessionId id = engine.createSession();
        engine.feedFrame(id, 4);
        engine.ask(id, 4, 3);

        std::atomic<int> answered{0}, closed{0};
        std::vector<std::thread> racers;
        for (int t = 0; t < 3; ++t) {
            racers.emplace_back([&, t] {
                try {
                    if (t == 0) {
                        engine.closeSession(id);
                        ++closed;
                    } else {
                        SessionRunResult r = engine.result(id);
                        EXPECT_EQ(r.generated.size(), 3u);
                        ++answered;
                    }
                } catch (const std::out_of_range &) {
                    // Lost the race against closeSession: fine.
                }
            });
        }
        for (auto &t : racers)
            t.join();
        EXPECT_EQ(closed.load(), 1);
        EXPECT_THROW(engine.result(id), std::out_of_range);
    }
}

TEST(ServeEngine, DefaultConfigNeverRejects)
{
    // Backwards compatibility with the PR-3 contract: without
    // admission/queue caps, the try* verbs always accept and the
    // classic verbs never throw AdmissionError/QueueFullError.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    Engine engine(cfg);

    Admission a = engine.tryCreateSession();
    ASSERT_TRUE(a.admitted());
    ASSERT_NE(a.id, 0u);
    EXPECT_TRUE(engine.tryFeedFrame(a.id, 64).accepted());
    EXPECT_TRUE(engine.tryAsk(a.id, 6, 5).accepted());

    Stats st = engine.stats();
    EXPECT_EQ(st.rejectedAdmissions, 0u);
    EXPECT_EQ(st.itemsRejected, 0u);
    EXPECT_EQ(st.config.maxLiveSessions, 0u);
    EXPECT_EQ(st.config.maxQueuedPerSession, 0u);

    SessionRunResult r = engine.result(a.id);
    EXPECT_EQ(r.frames, 64u);
    EXPECT_EQ(r.generated.size(), 5u);
    engine.closeSession(a.id);
}

TEST(ServeEngine, DestructorDrainsPendingWork)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    {
        Engine engine(cfg);
        SessionId id = engine.createSession();
        engine.feedFrame(id, 6);
        engine.ask(id, 4, 3);
        // No result()/wait(): the destructor must drain cleanly.
    }
    SUCCEED();
}
