/**
 * @file
 * Fig. 4 reproduction (motivation):
 *  (a) KV cache memory footprint vs. video duration at 10 FPS,
 *      batch 4 — exceeds edge GPU memory within minutes;
 *  (b) end-to-end latency breakdown of InfiniGen on A100 vs. cache
 *      length — prefill dominates as the cache grows (83% at 80K);
 *  (c) retrieval overhead split at 40K with prefill retrieval
 *      (InfiniGenP): KV prediction ~40%, KV fetch ~39% of latency.
 */

#include <cstdio>

#include "bench_util.hh"
#include "llm/config.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

int
main()
{
    ModelConfig model = ModelConfig::llama3_8b();

    bench::header("Fig. 4a: memory footprint @10FPS, batch 4");
    const double tokens_per_frame = 10.0;
    const double weights_gb = model.paramBytes(2.0) / 1e9;
    std::printf("%10s %14s %14s %10s\n", "minutes", "KV cache GB",
                "weights GB", "total GB");
    for (int minutes : {1, 2, 4, 6, 8, 10}) {
        double tokens = minutes * 60.0 * 10.0 * tokens_per_frame;
        double kv_gb =
            tokens * model.kvBytesPerToken(2.0) * 4 /* batch */ / 1e9;
        std::printf("%10d %14.1f %14.1f %10.1f%s\n", minutes, kv_gb,
                    weights_gb, kv_gb + weights_gb,
                    kv_gb + weights_gb > 32.0
                        ? "  <- exceeds 32 GB edge GPU"
                        : "");
    }

    bench::header("Fig. 4b: E2E latency breakdown, InfiniGen on A100");
    std::printf("%8s %10s %10s %10s %12s\n", "cache", "vision%",
                "prefill%", "gen%", "total s");
    for (uint32_t cache : {0u, 1000u, 10000u, 20000u, 40000u, 80000u}) {
        RunConfig rc;
        rc.hw = AcceleratorConfig::a100();
        rc.method = MethodModel::infinigen();
        rc.cacheTokens = cache;
        SessionResult s = SystemModel(rc).session(26, 25, 39);
        double total = s.totalMs();
        std::printf("%7uK %9.1f%% %9.1f%% %9.1f%% %12.2f\n",
                    cache / 1000, 100.0 * s.visionMs / total,
                    100.0 * s.prefillMs / total,
                    100.0 * s.generationMs / total, total / 1e3);
    }
    bench::note("paper: prefill reaches 83% of latency at 80K");

    bench::header("Fig. 4c: retrieval overhead at 40K (InfiniGenP)");
    {
        RunConfig rc;
        rc.hw = AcceleratorConfig::a100();
        rc.method = MethodModel::infinigenP();
        rc.cacheTokens = 40000;
        PhaseResult r = SystemModel(rc).framePhase();
        double total = r.totalMs;
        double llm = r.denseMs + r.attentionMs + r.visionMs;
        std::printf("KV prediction: %5.1f%% of latency\n",
                    100.0 * r.predictionMs / total);
        std::printf("KV cache fetch:%5.1f%% of latency\n",
                    100.0 * r.fetchMs / total);
        std::printf("LLM compute:   %5.1f%% of latency "
                    "(overlap-normalized shares)\n",
                    100.0 * llm / total);
        bench::note("paper: prediction 40%, fetch 39%, LLM 21%");
    }
    return 0;
}
