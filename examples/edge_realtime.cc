/**
 * @file
 * Edge real-time deployment study: uses the hardware timing model to
 * show the per-frame latency, FPS, and energy of V-Rex8 versus an
 * AGX Orin running FlexGen as a live video session grows — the
 * paper's headline scenario (3.9-8.3 FPS real-time edge inference).
 */

#include <cstdio>

#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

int
main()
{
    std::printf("edge real-time study: Llama-3-8B, 10 tokens/frame, "
                "batch 1\n\n");
    std::printf("%8s | %12s %8s | %12s %8s | %8s\n", "cache",
                "AGX ms/frame", "AGX FPS", "VRex ms/frame", "VRex FPS",
                "speedup");

    for (uint32_t cache :
         {1000u, 5000u, 10000u, 20000u, 40000u, 80000u}) {
        RunConfig agx;
        agx.hw = AcceleratorConfig::agxOrin();
        agx.method = MethodModel::flexgen();
        agx.cacheTokens = cache;

        RunConfig vrex;
        vrex.hw = AcceleratorConfig::vrex8();
        vrex.method = MethodModel::resvFull();
        vrex.cacheTokens = cache;

        PhaseResult a = SystemModel(agx).framePhase();
        PhaseResult v = SystemModel(vrex).framePhase();
        std::printf("%7uK | %12.0f %8.2f | %12.0f %8.2f | %7.1fx%s\n",
                    cache / 1000, a.totalMs, 1000.0 / a.totalMs,
                    v.totalMs, 1000.0 / v.totalMs,
                    a.totalMs / v.totalMs,
                    1000.0 / v.totalMs >= 2.0 ? "  [real-time]" : "");
    }

    // Energy at the largest point.
    RunConfig agx;
    agx.hw = AcceleratorConfig::agxOrin();
    agx.method = MethodModel::flexgen();
    agx.cacheTokens = 40000;
    RunConfig vrex = agx;
    vrex.hw = AcceleratorConfig::vrex8();
    vrex.method = MethodModel::resvFull();
    PhaseResult a = SystemModel(agx).framePhase();
    PhaseResult v = SystemModel(vrex).framePhase();
    std::printf("\nenergy per frame at 40K: AGX %.2f J, V-Rex8 %.2f J "
                "(%.1fx less)\n",
                a.energy.totalJ(), v.energy.totalJ(),
                a.energy.totalJ() / v.energy.totalJ());
    return 0;
}
