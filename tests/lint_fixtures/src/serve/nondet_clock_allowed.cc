// Fixture: a justified allow() suppresses the finding — both the
// same-line form and the standalone-comment-line form.
#include <chrono>

long
nowInline()
{
    return std::chrono::steady_clock::now() // vrex-lint: allow(nondet-clock) -- fixture: observability-only read
        .time_since_epoch()
        .count();
}

long
nowAbove()
{
    // vrex-lint: allow(nondet-clock) -- fixture: the directive on a
    // comment line covers the next code line, across wrapped text.
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
