/**
 * @file
 * vrex_lint self-tests: every rule exercised against the fixture zoo
 * in tests/lint_fixtures/ (violation caught, clean file passes,
 * justified allow honored, bare allow rejected), plus inline-snippet
 * unit tests for the trickier parsing paths, plus the gate itself —
 * the real src/ tree must lint clean.
 *
 * VREX_LINT_FIXTURE_DIR and VREX_LINT_SRC_DIR are injected by the
 * build (tests/CMakeLists.txt).
 */

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vrex_lint/lint.hh"

namespace
{

using vrex::lint::Finding;
using vrex::lint::lintSource;
using vrex::lint::lintTree;

/** The fixture findings, grouped by file. Computed once: the zoo is
 *  static input and every test slices the same scan. */
const std::map<std::string, std::vector<Finding>> &
fixtureFindings()
{
    static const auto *by_file = [] {
        auto *m = new std::map<std::string, std::vector<Finding>>;
        for (Finding &f :
             lintTree(std::string(VREX_LINT_FIXTURE_DIR) + "/src"))
            (*m)[f.file].push_back(std::move(f));
        return m;
    }();
    return *by_file;
}

std::vector<std::string>
rulesIn(const std::string &file)
{
    std::vector<std::string> rules;
    const auto it = fixtureFindings().find(file);
    if (it == fixtureFindings().end())
        return rules;
    for (const Finding &f : it->second)
        rules.push_back(f.rule);
    return rules;
}

TEST(LintFixtures, CleanFilePasses)
{
    EXPECT_TRUE(rulesIn("common/clean.cc").empty());
}

TEST(LintFixtures, NondetRandCaught)
{
    // Exactly one hit, on the call line — not on the tokens inside
    // the comment or the string literal.
    const auto &fs = fixtureFindings().at("serve/nondet_rand.cc");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "nondet-rand");
    EXPECT_EQ(fs[0].line, 11);
}

TEST(LintFixtures, NondetClockCaught)
{
    EXPECT_EQ(rulesIn("serve/nondet_clock.cc"),
              std::vector<std::string>{"nondet-clock"});
}

TEST(LintFixtures, JustifiedAllowHonored)
{
    // Same-line form and standalone-comment form both suppress.
    EXPECT_TRUE(rulesIn("serve/nondet_clock_allowed.cc").empty());
}

TEST(LintFixtures, BareAllowRejectedAndIneffective)
{
    const auto rules = rulesIn("serve/nondet_clock_bare_allow.cc");
    EXPECT_EQ(std::count(rules.begin(), rules.end(), "allow-syntax"),
              1);
    EXPECT_EQ(std::count(rules.begin(), rules.end(), "nondet-clock"),
              1);
}

TEST(LintFixtures, UnknownRuleInAllowRejected)
{
    EXPECT_EQ(rulesIn("common/allow_unknown_rule.cc"),
              std::vector<std::string>{"allow-syntax"});
}

TEST(LintFixtures, LayerViolationCaught)
{
    const auto &fs = fixtureFindings().at("tensor/layer_bad.cc");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "layer-dag");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("serve/engine.hh"),
              std::string::npos);
}

TEST(LintFixtures, TopLayerIncludesPass)
{
    EXPECT_TRUE(rulesIn("serve/layer_ok.cc").empty());
}

TEST(LintFixtures, UnorderedInSerializingFileCaught)
{
    // Include line and member line both flagged.
    const auto rules = rulesIn("llm/unordered_serial.cc");
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         "unordered-serial"),
              2);
    EXPECT_EQ(rules.size(), 2u);
}

TEST(LintFixtures, UnorderedWithoutSerializePasses)
{
    EXPECT_TRUE(rulesIn("llm/unordered_noserial.cc").empty());
}

TEST(LintFixtures, AssertFormatMispairingsCaught)
{
    // Too few varargs, too many varargs, non-literal format.
    EXPECT_EQ(rulesIn("core/assert_format_bad.cc"),
              (std::vector<std::string>{
                  "assert-format", "assert-format", "assert-format"}));
}

TEST(LintFixtures, WellFormedAssertsPass)
{
    EXPECT_TRUE(rulesIn("core/assert_format_ok.cc").empty());
}

TEST(LintFixtures, SkewedSerializeRestoreCaught)
{
    const auto &fs = fixtureFindings().at("core/serial_pair_bad.cc");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "serial-pairing");
    EXPECT_NE(fs[0].message.find("put<uint32_t>x2 vs get<uint32_t>x1"),
              std::string::npos);
}

TEST(LintFixtures, MirroredSerializeRestorePasses)
{
    EXPECT_TRUE(rulesIn("core/serial_pair_ok.cc").empty());
}

// ---------------------------------------------------------------
// Inline-snippet unit tests for parsing corners.

TEST(LintUnit, TokensInStringsAndCommentsIgnored)
{
    EXPECT_TRUE(lintSource("serve/a.cc",
                           "// steady_clock\n"
                           "const char *s = \"std::rand()\";\n")
                    .empty());
}

TEST(LintUnit, RawStringContentsIgnored)
{
    EXPECT_TRUE(
        lintSource("serve/a.cc",
                   "const char *s = R\"(system_clock rand)\";\n")
            .empty());
}

TEST(LintUnit, SubstringTokensDoNotMatch)
{
    // "srand" inside "mysrandom" / "rand" inside "operand" must not
    // fire: scans are word-bounded.
    EXPECT_TRUE(lintSource("serve/a.cc",
                           "int mysrandom = 0;\n"
                           "int operand = 1;\n")
                    .empty());
}

TEST(LintUnit, MacroDefinitionIsNotACallSite)
{
    EXPECT_TRUE(
        lintSource("common/a.hh",
                   "#define VREX_ASSERT(cond, ...)              \\\n"
                   "    ::vrex::panicAt(#cond, \"\" __VA_ARGS__)\n")
            .empty());
}

TEST(LintUnit, UnknownLayerSkipsDagRule)
{
    EXPECT_TRUE(lintSource("thirdparty/x.cc",
                           "#include \"serve/engine.hh\"\n")
                    .empty());
}

TEST(LintUnit, RuleIdsStable)
{
    const auto &ids = vrex::lint::ruleIds();
    const std::set<std::string> got(ids.begin(), ids.end());
    const std::set<std::string> want = {
        "nondet-rand",   "nondet-clock",   "unordered-serial",
        "layer-dag",     "assert-format",  "serial-pairing",
        "allow-syntax"};
    EXPECT_EQ(got, want);
}

TEST(LintUnit, FormatFinding)
{
    const Finding f{"serve/engine.cc", 42, "nondet-clock", "boom"};
    EXPECT_EQ(vrex::lint::formatFinding(f),
              "serve/engine.cc:42: [nondet-clock] boom");
}

TEST(LintUnit, LintTreeThrowsOnMissingRoot)
{
    EXPECT_THROW(lintTree("/nonexistent/vrex/src"),
                 std::runtime_error);
}

// ---------------------------------------------------------------
// The gate: the real tree must be clean. Running it here (not just
// as the standalone ctest binary check) puts the production rules on
// real input under ASan/UBSan in the sanitizer CI legs.

TEST(LintTree, RealSrcTreeIsClean)
{
    std::vector<Finding> fs = lintTree(VREX_LINT_SRC_DIR);
    for (const Finding &f : fs)
        ADD_FAILURE() << vrex::lint::formatFinding(f);
}

// The batch planner decides which sessions fuse into one forward
// pass; any nondeterminism there (clock- or rand-driven step sizing)
// would silently break the batched == sequential byte-identity
// contract. The tree gate above covers it transitively — this test
// names the TU so the scan cannot quietly lose it to a rename.
TEST(LintTree, BatchPlannerTuIsCovered)
{
    for (const char *rel :
         {"serve/batch_planner.cc", "serve/batch_planner.hh"}) {
        std::ifstream in(std::string(VREX_LINT_SRC_DIR) + "/" + rel,
                         std::ios::binary);
        ASSERT_TRUE(in.is_open())
            << rel << " missing from the linted tree";
        std::stringstream body;
        body << in.rdbuf();
        for (const Finding &f : lintSource(rel, body.str()))
            ADD_FAILURE() << vrex::lint::formatFinding(f);
    }
}

} // namespace
