/**
 * @file
 * vrex_lint CLI.
 *
 *   vrex_lint --src-root <dir> [rel-file...]
 *
 * With no file arguments, lints every *.cc / *.hh under the root.
 * With file arguments (paths relative to the root), lints just those.
 * Findings print as `file:line: [rule] message`, one per line.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage / IO error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "vrex_lint/lint.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: vrex_lint --src-root <dir> [rel-file...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string src_root;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--src-root") {
            if (i + 1 >= argc)
                return usage();
            src_root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (src_root.empty())
        return usage();

    std::vector<vrex::lint::Finding> findings;
    try {
        if (files.empty()) {
            findings = vrex::lint::lintTree(src_root);
        } else {
            for (const std::string &rel : files) {
                std::ifstream in(src_root + "/" + rel,
                                 std::ios::binary);
                if (!in) {
                    std::cerr << "vrex_lint: cannot read "
                              << src_root << "/" << rel << "\n";
                    return 2;
                }
                std::ostringstream buf;
                buf << in.rdbuf();
                for (auto &f :
                     vrex::lint::lintSource(rel, buf.str()))
                    findings.push_back(std::move(f));
            }
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    for (const auto &f : findings)
        std::cout << vrex::lint::formatFinding(f) << "\n";
    if (!findings.empty()) {
        std::cerr << "vrex_lint: " << findings.size()
                  << " finding(s)\n";
        return 1;
    }
    return 0;
}
