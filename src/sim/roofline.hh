/**
 * @file
 * Roofline analysis (paper Fig. 18): operational intensity vs.
 * achieved throughput, reported as a fraction of the platform peak.
 */

#ifndef VREX_SIM_ROOFLINE_HH
#define VREX_SIM_ROOFLINE_HH

#include "sim/hw_config.hh"
#include "sim/system_model.hh"

namespace vrex
{

/** One system's position on the roofline plot. */
struct RooflinePoint
{
    double opIntensity = 0.0;      //!< FLOP per DRAM byte.
    double achievedTflops = 0.0;
    double peakTflops = 0.0;
    double roofTflops = 0.0;       //!< min(peak, OI * BW).

    double
    fractionOfPeak() const
    {
        return peakTflops > 0.0 ? achievedTflops / peakTflops : 0.0;
    }

    /** Fraction of the workload's theoretical maximum (the roof at
     *  its operational intensity) — what the paper's Fig. 18 quotes
     *  (FlexGen 6.6%, ReKV ~15%, V-Rex 71.5%). */
    double
    fractionOfRoof() const
    {
        return roofTflops > 0.0 ? achievedTflops / roofTflops : 0.0;
    }
};

/** Evaluate the roofline position of one phase result. */
RooflinePoint rooflineFor(const PhaseResult &phase,
                          const AcceleratorConfig &hw);

} // namespace vrex

#endif // VREX_SIM_ROOFLINE_HH
