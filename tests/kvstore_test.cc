/**
 * @file
 * Tests for the hierarchical KV cache residency tracker and the
 * cluster-contiguous memory layout.
 */

#include <gtest/gtest.h>

#include "kvstore/cluster_layout.hh"
#include "kvstore/hierarchical_cache.hh"

using namespace vrex;

TEST(HierarchicalCache, AllResidentUnderCapacity)
{
    TierConfig cfg;
    cfg.deviceKvCapacityBytes = 1000;
    HierarchicalKVCache cache(10, cfg);  // 100-token window.
    cache.appendTokens(50);
    EXPECT_EQ(cache.totalTokens(), 50u);
    EXPECT_EQ(cache.residentTokens(), 50u);
    EXPECT_EQ(cache.residency(0), Tier::Device);
    EXPECT_EQ(cache.stats().offloadedBytes, 0u);
}

TEST(HierarchicalCache, OldestSpillFirst)
{
    TierConfig cfg;
    cfg.deviceKvCapacityBytes = 100;  // 10-token window.
    cfg.offloadTarget = Tier::Storage;
    HierarchicalKVCache cache(10, cfg);
    cache.appendTokens(25);
    EXPECT_EQ(cache.residentTokens(), 10u);
    EXPECT_EQ(cache.windowStart(), 15u);
    EXPECT_EQ(cache.residency(14), Tier::Storage);
    EXPECT_EQ(cache.residency(15), Tier::Device);
    EXPECT_EQ(cache.stats().offloadedBytes, 150u);
}

TEST(HierarchicalCache, OffloadAllMode)
{
    TierConfig cfg;
    cfg.deviceKvCapacityBytes = 1000000;
    cfg.offloadAll = true;  // FlexGen.
    HierarchicalKVCache cache(10, cfg);
    cache.appendTokens(10);
    EXPECT_EQ(cache.residentTokens(), 0u);
    EXPECT_EQ(cache.stats().offloadedBytes, 100u);
    EXPECT_EQ(cache.residency(5), Tier::CpuMem);
}

TEST(HierarchicalCache, TouchCountsOnlyNonResident)
{
    TierConfig cfg;
    cfg.deviceKvCapacityBytes = 100;  // 10-token window.
    HierarchicalKVCache cache(10, cfg);
    cache.appendTokens(20);  // Tokens 0-9 spilled, 10-19 resident.
    uint64_t fetched = cache.touch({0, 5, 12, 19}, 4);
    EXPECT_EQ(fetched, 8u);  // Two non-resident tokens * 4 bytes.
    EXPECT_EQ(cache.stats().fetchedTokens, 2u);
    EXPECT_EQ(cache.stats().touchedTokens, 4u);
}

TEST(HierarchicalCache, IncrementalAppends)
{
    TierConfig cfg;
    cfg.deviceKvCapacityBytes = 50;  // 5-token window.
    HierarchicalKVCache cache(10, cfg);
    for (int i = 0; i < 12; ++i)
        cache.appendTokens(1);
    EXPECT_EQ(cache.residentTokens(), 5u);
    EXPECT_EQ(cache.stats().offloadedBytes, 70u);
}

TEST(HierarchicalCache, ZeroCapacityWindowSpillsEverything)
{
    // Default TierConfig: deviceKvCapacityBytes = 0, offloadAll off.
    // The zero-byte capacity means a zero-token device window: every
    // appended token spills straight through, same traffic as
    // offloadAll but via the capacity path.
    TierConfig cfg;
    HierarchicalKVCache cache(10, cfg);
    cache.appendTokens(7);
    EXPECT_EQ(cache.totalTokens(), 7u);
    EXPECT_EQ(cache.residentTokens(), 0u);
    EXPECT_EQ(cache.windowStart(), 7u);
    EXPECT_EQ(cache.stats().offloadedBytes, 70u);
    EXPECT_EQ(cache.residency(0), Tier::CpuMem);
    EXPECT_EQ(cache.residency(6), Tier::CpuMem);
    // Every touched token is a fetch: nothing is resident.
    EXPECT_EQ(cache.touch({0, 6}, 4), 8u);
    EXPECT_EQ(cache.stats().fetchedTokens, 2u);
}

TEST(HierarchicalCache, ZeroCapacityMatchesOffloadAllTraffic)
{
    TierConfig zero; // capacity 0, offloadAll = false.
    TierConfig all;
    all.deviceKvCapacityBytes = 1000000;
    all.offloadAll = true;
    HierarchicalKVCache a(10, zero), b(10, all);
    for (int i = 0; i < 4; ++i) {
        a.appendTokens(3);
        b.appendTokens(3);
    }
    EXPECT_EQ(a.stats().offloadedBytes, b.stats().offloadedBytes);
    EXPECT_EQ(a.residentTokens(), b.residentTokens());
}

TEST(HierarchicalCache, EmptyTouchIsNoOp)
{
    TierConfig cfg;
    HierarchicalKVCache cache(10, cfg);
    // Legal on a completely empty cache...
    EXPECT_EQ(cache.touch({}, 4), 0u);
    EXPECT_EQ(cache.stats().touchedTokens, 0u);
    EXPECT_EQ(cache.stats().fetchedTokens, 0u);
    EXPECT_EQ(cache.stats().fetchedBytes, 0u);
    // ...and on a populated one.
    cache.appendTokens(3);
    EXPECT_EQ(cache.touch({}, 4), 0u);
    EXPECT_EQ(cache.stats().touchedTokens, 0u);
}

TEST(HierarchicalCacheDeathTest, TouchUnknownTokenPanics)
{
    TierConfig cfg;
    cfg.deviceKvCapacityBytes = 100;
    HierarchicalKVCache cache(10, cfg);
    cache.appendTokens(2);
    EXPECT_DEATH((void)cache.touch({2}, 4), "unknown token");
}

TEST(HierarchicalCache, ClearResets)
{
    TierConfig cfg;
    cfg.deviceKvCapacityBytes = 10;
    HierarchicalKVCache cache(10, cfg);
    cache.appendTokens(5);
    cache.clear();
    EXPECT_EQ(cache.totalTokens(), 0u);
    EXPECT_EQ(cache.stats().offloadedBytes, 0u);
}

TEST(ClusterLayout, IdentityBeforeRebuild)
{
    ClusterLayout layout;
    EXPECT_EQ(layout.positionOf(7), 7u);
}

TEST(ClusterLayout, RebuildGroupsClusters)
{
    ClusterLayout layout;
    // Clusters: {0, 4, 8}, {1, 5}; stragglers 2, 3, 6, 7.
    layout.rebuild({{0, 4, 8}, {1, 5}}, 9);
    EXPECT_EQ(layout.positionOf(0), 0u);
    EXPECT_EQ(layout.positionOf(4), 1u);
    EXPECT_EQ(layout.positionOf(8), 2u);
    EXPECT_EQ(layout.positionOf(1), 3u);
    EXPECT_EQ(layout.positionOf(5), 4u);
    // Every slot used exactly once.
    std::vector<bool> used(9, false);
    for (uint32_t t = 0; t < 9; ++t) {
        uint32_t p = layout.positionOf(t);
        ASSERT_LT(p, 9u);
        EXPECT_FALSE(used[p]);
        used[p] = true;
    }
}

TEST(ClusterLayout, DuplicateMembershipIgnored)
{
    ClusterLayout layout;
    layout.rebuild({{0, 1}, {1, 2}}, 3);
    std::vector<bool> used(3, false);
    for (uint32_t t = 0; t < 3; ++t)
        used[layout.positionOf(t)] = true;
    for (bool u : used)
        EXPECT_TRUE(u);
}

TEST(ClusterLayout, RunsTimeOrder)
{
    EXPECT_EQ(ClusterLayout::runsTimeOrder({}), 0u);
    EXPECT_EQ(ClusterLayout::runsTimeOrder({3}), 1u);
    EXPECT_EQ(ClusterLayout::runsTimeOrder({1, 2, 3}), 1u);
    EXPECT_EQ(ClusterLayout::runsTimeOrder({1, 2, 5, 6, 9}), 3u);
}

TEST(ClusterLayout, ClusteredSelectionFewerRuns)
{
    // A cluster scattered in time becomes one contiguous run.
    ClusterLayout layout;
    std::vector<uint32_t> cluster = {2, 9, 17, 25, 33};
    layout.rebuild({cluster}, 40);
    EXPECT_EQ(ClusterLayout::runsTimeOrder(cluster), 5u);
    EXPECT_EQ(layout.runsForSelection(cluster), 1u);
}

TEST(ClusterLayout, MultiClusterSelection)
{
    ClusterLayout layout;
    layout.rebuild({{0, 10, 20}, {5, 15, 25}}, 30);
    // Selecting both clusters = positions 0..5 = one run.
    EXPECT_EQ(layout.runsForSelection({0, 10, 20, 5, 15, 25}), 1u);
    // Selecting one cluster = one run of 3.
    EXPECT_EQ(layout.runsForSelection({5, 15, 25}), 1u);
}

TEST(ClusterLayout, EmptySelection)
{
    ClusterLayout layout;
    layout.rebuild({{0, 1}}, 2);
    EXPECT_EQ(layout.runsForSelection({}), 0u);
}
