/**
 * @file
 * COIN-like streaming workloads and the production traffic-shape zoo.
 *
 * The paper evaluates on five COIN benchmark tasks. The real dataset
 * is unavailable offline, so we synthesize five task archetypes whose
 * knobs (video drift, scene-cut rate, question timing and length)
 * induce the *score-distribution diversity* across tasks, layers and
 * heads that Table II and Fig. 20 depend on. The paper's "average
 * working scenario" (26 frames, 25 question tokens, 39 answer tokens)
 * is provided as `coinAverage()`.
 *
 * On top of the per-session scripts sits the workload layer: named,
 * seeded, replayable **traffic traces** (`TrafficTrace`) that model
 * production shapes — Poisson / diurnal / flash-crowd arrival
 * processes on a virtual microsecond clock, heavy-tailed session
 * lengths (bounded Pareto), and per-session profiles (chatty
 * adversary, long-video marathon, bulk ingest) composing the
 * SessionScript factories. A trace is a pure function of its
 * `TraceSpec`: building it twice yields byte-identical event streams
 * (locked by tests/workload_test.cc), which is what makes the
 * open-loop load harness (`serve/loadgen.hh`) and its bench panels
 * deterministic. The scenario catalog lives in `traceZoo()` /
 * `traceSpecByName()`; see src/video/README.md.
 */

#ifndef VREX_VIDEO_WORKLOAD_HH
#define VREX_VIDEO_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "video/frame_generator.hh"

namespace vrex
{

/** The five COIN task archetypes used in Table II. */
enum class CoinTask : uint8_t
{
    Step,       //!< Step recognition: short clips, dense cuts.
    Next,       //!< Next-step prediction: strong temporal continuity.
    Proc,       //!< Procedure localization: long steady segments.
    ProcPlus,   //!< Procedure+ (multi-segment): mixed dynamics.
    Task,       //!< Task recognition: global, very stable scenes.
};

/** All five tasks, in Table II column order. */
const std::vector<CoinTask> &allCoinTasks();

/** Human-readable task name. */
std::string coinTaskName(CoinTask task);

/** One event in a streaming session. */
struct SessionEvent
{
    enum class Type : uint8_t { Frame, Question, Generate };
    Type type;
    /** Question: token count. Generate: answer token count. */
    uint32_t tokens = 0;

    /** Unit work items this event expands to — the grain the serve
     *  scheduler time-slices: Generate{n} is n independent
     *  single-token steps, Frame/Question are one item each. */
    uint32_t
    unitCount() const
    {
        return type == Type::Generate ? tokens : 1;
    }
};

/** A full scripted streaming session. */
struct SessionScript
{
    std::string name;
    CoinTask task = CoinTask::Step;
    VideoConfig video;
    std::vector<SessionEvent> events;
    uint64_t seed = 0;

    uint32_t frameCount() const;
    uint32_t questionTokens() const;
    uint32_t answerTokens() const;
};

/** Factory for scripted sessions. */
class WorkloadGenerator
{
  public:
    /**
     * The paper's average COIN scenario: 26 frames, one 25-token
     * question, 39 generated tokens.
     */
    static SessionScript coinAverage(uint64_t seed);

    /** A task-specific session (drives Table II / Fig. 20). */
    static SessionScript coinTask(CoinTask task, uint64_t seed);

    /**
     * A multi-turn session: frames interleaved with several
     * question/answer rounds (the conversational-continuity setting
     * of §II-A).
     */
    static SessionScript multiTurn(uint32_t frames, uint32_t turns,
                                   uint64_t seed);

    /** Random question token ids of length @p n in [0, vocab).
     *  Degenerate-input contract: n == 0 returns an empty vector for
     *  any vocab; n > 0 requires vocab > 0 (asserted — there is no
     *  valid id to draw from an empty vocabulary). */
    static std::vector<uint32_t> questionTokens(uint32_t n,
                                                uint32_t vocab,
                                                uint64_t seed);
};

// -------------------------------------------------------------------
// Traffic-shape zoo: arrival processes, heavy tails, session profiles
// -------------------------------------------------------------------

/**
 * Traffic class of one arriving session. Mirrors the serve layer's
 * Interactive/Bulk scheduling classes without depending on it (video
 * sits below serve in the layer DAG); the open-loop driver maps this
 * onto serve::SchedClass one-to-one.
 */
enum class TrafficClass : uint8_t
{
    Interactive = 0,
    Bulk = 1,
};

/** Number of traffic classes (array dimension of per-class knobs). */
inline constexpr uint32_t kTrafficClasses = 2;

const char *trafficClassName(TrafficClass c);

/**
 * Shape of a session arrival process on the virtual clock. Rates are
 * arrivals per virtual second; the process emits arrival timestamps
 * in virtual microseconds. Every shape is a pure function of
 * (spec, seed): replaying a spec yields the identical timestamp
 * sequence.
 */
struct ArrivalSpec
{
    enum class Kind : uint8_t
    {
        /** Evenly spaced arrivals at exactly `ratePerSec`. */
        Uniform,
        /** Homogeneous Poisson: iid exponential interarrivals. */
        Poisson,
        /** Sinusoidal rate curve (day/night load swing): the rate
         *  oscillates in [ratePerSec*(1-depth), ratePerSec*(1+depth)]
         *  with period `diurnalPeriodSec` (thinning-sampled). */
        Diurnal,
        /** Poisson base load plus a flash crowd: the rate jumps to
         *  ratePerSec*burstMultiplier inside
         *  [burstStartSec, burstStartSec+burstLenSec). */
        FlashCrowd,
    };

    Kind kind = Kind::Poisson;
    /** Mean arrival rate (peak-of-mean for Diurnal base). > 0. */
    double ratePerSec = 20.0;
    /** Diurnal swing depth in [0, 1): 0 degenerates to Poisson. */
    double diurnalDepth = 0.8;
    double diurnalPeriodSec = 20.0;
    /** Flash-crowd window and intensity (multiplier >= 1). */
    double burstStartSec = 2.0;
    double burstLenSec = 1.0;
    double burstMultiplier = 8.0;
};

const char *arrivalKindName(ArrivalSpec::Kind kind);

/**
 * Deterministic arrival-time generator: `nextArrivalUs()` returns the
 * virtual-microsecond timestamp of each successive session arrival
 * (non-decreasing; at least 1 us apart for the stochastic shapes'
 * candidate draws). Non-homogeneous shapes (Diurnal, FlashCrowd) are
 * sampled by thinning against their peak rate, so they stay exact
 * inhomogeneous-Poisson processes and stay replayable.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, uint64_t seed);

    /** Virtual timestamp (us) of the next arrival. */
    uint64_t nextArrivalUs();

    const ArrivalSpec &spec() const { return spec_; }

  private:
    /** Instantaneous rate at virtual time @p at_us. */
    double rateAt(uint64_t at_us) const;

    ArrivalSpec spec_;
    Rng rng;
    uint64_t nowUs = 0;
    /** Arrivals emitted so far (Uniform's drift-free index). */
    uint64_t uniformCount = 0;
};

/**
 * Bounded-Pareto sample in [lo, hi] with tail index @p alpha (lower
 * alpha = heavier tail; production session lengths are commonly
 * alpha ~ 1-2). Requires 0 < lo <= hi and alpha > 0; lo == hi is the
 * degenerate point mass.
 */
uint32_t paretoLength(Rng &rng, uint32_t lo, uint32_t hi,
                      double alpha);

/**
 * Per-session behavioural archetypes composed from the script
 * factories. Lengths are heavy-tailed where production traffic is
 * (marathon video length, adversary turn count).
 */
enum class SessionProfile : uint8_t
{
    /** The paper's average COIN QA session (Interactive). */
    QaAverage = 0,
    /** Few frames, a heavy-tailed burst of tiny QA turns — the
     *  chatty adversary hammering the interactive path. */
    ChattyAdversary = 1,
    /** Bounded-Pareto long video, one trailing QA round — the
     *  long-video marathon (Bulk). */
    LongVideoMarathon = 2,
    /** Pure frame backlog plus a token QA round (Bulk ingest). */
    BulkIngest = 3,
};

inline constexpr uint32_t kSessionProfiles = 4;

const char *sessionProfileName(SessionProfile p);

/** The traffic class a profile's sessions dispatch under. */
TrafficClass profileClass(SessionProfile p);

/** Build one session script of profile @p p (seed-deterministic). */
SessionScript profileScript(SessionProfile p, uint64_t seed);

/** One session arrival inside a trace. */
struct TraceArrival
{
    /** Virtual arrival timestamp (microseconds). */
    uint64_t atUs = 0;
    SessionProfile profile = SessionProfile::QaAverage;
    TrafficClass cls = TrafficClass::Interactive;
    SessionScript script;

    /** Unit work items the session's script expands to. */
    uint32_t unitItems() const;
};

/**
 * Declarative identity of a traffic trace. The trace is a pure
 * function of this spec: same spec -> byte-identical TrafficTrace.
 */
struct TraceSpec
{
    std::string name = "trace";
    uint64_t seed = 1;
    /** Session arrivals in the trace. > 0. */
    uint32_t sessions = 64;
    ArrivalSpec arrivals;
    /** Relative profile weights (need not sum to 1; all-zero is a
     *  degenerate input and asserts). Drawn iid per arrival. */
    std::array<double, kSessionProfiles> profileMix{1.0, 0.0, 0.0,
                                                    0.0};
};

/** A materialized, replayable traffic trace. */
struct TrafficTrace
{
    TraceSpec spec;
    /** Arrivals in non-decreasing virtual-time order. */
    std::vector<TraceArrival> arrivals;

    /** Virtual timestamp of the last arrival (0 when empty). */
    uint64_t horizonUs() const;
    /** Total unit work items across all arrivals' scripts. */
    uint64_t totalUnitItems() const;
    /** Arrivals of one traffic class. */
    uint32_t countClass(TrafficClass c) const;
};

/**
 * Materialize @p spec into a trace: sample the arrival process, draw
 * a profile per arrival from the mix, and build its session script.
 * Deterministic and replayable: byte-identical output for equal
 * specs. Degenerate inputs (0 sessions, rate <= 0, all-zero mix,
 * depth outside [0,1), multiplier < 1) assert.
 */
TrafficTrace buildTrace(const TraceSpec &spec);

/**
 * The named scenario catalog (see src/video/README.md for shapes and
 * intent): "steady-qa", "diurnal-mix", "flash-crowd",
 * "chatty-adversary", "marathon-tail", "mixed-classes".
 */
const std::vector<std::string> &traceZoo();

/**
 * Catalog spec by name; panics on an unknown name (listing the
 * catalog). @p sessions > 0 overrides the scenario's default arrival
 * count, scaling the scenario without changing its shape.
 */
TraceSpec traceSpecByName(const std::string &name,
                          uint32_t sessions = 0);

} // namespace vrex

#endif // VREX_VIDEO_WORKLOAD_HH
