/**
 * @file
 * Clang Thread Safety Analysis annotations and the annotated locking
 * primitives the concurrency surface is written against.
 *
 * Under clang, `-Wthread-safety` (enabled for every clang build by
 * the top-level CMakeLists, and promoted to an error by the CI
 * `-Werror` legs) statically proves that every member marked
 * VREX_GUARDED_BY is only touched with its mutex held and that every
 * function marked VREX_REQUIRES is only called under the right lock.
 * Under GCC the macros expand to nothing and the wrappers are
 * zero-cost veneers over the std primitives.
 *
 * Conventions for annotated code:
 *
 *  - Lock with vrex::Mutex + vrex::LockGuard / vrex::UniqueLock, not
 *    the raw std types: only the wrappers carry capability
 *    annotations the analysis can track.
 *  - Condition waits use vrex::CondVar::wait(UniqueLock&) inside an
 *    explicit `while (!predicate)` loop in the annotated function —
 *    NOT the predicate-lambda overload of std::condition_variable.
 *    A capturing lambda is analyzed as a separate function, so
 *    guarded reads inside it would (correctly) be flagged; an inline
 *    loop keeps the reads in a scope the analysis knows holds the
 *    lock.
 *  - Private helpers that assume the lock is held are annotated
 *    VREX_REQUIRES(mu) on their in-class declaration.
 *
 * Known approximation: during CondVar::wait the underlying std mutex
 * is released and reacquired while the analysis considers the
 * capability continuously held. This is the standard modelling used
 * by annotated codebases — the capability *is* held whenever the
 * caller's code runs (before the wait, and after it returns), which
 * is exactly the window the analysis reasons about.
 */

#ifndef VREX_COMMON_THREAD_ANNOTATIONS_HH
#define VREX_COMMON_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define VREX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VREX_THREAD_ANNOTATION(x) // expands to nothing outside clang
#endif

/** Marks a class as a lockable capability (Mutex below). */
#define VREX_CAPABILITY(x) VREX_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define VREX_SCOPED_CAPABILITY VREX_THREAD_ANNOTATION(scoped_lockable)

/** Member data that may only be touched with @p x held. */
#define VREX_GUARDED_BY(x) VREX_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define VREX_PT_GUARDED_BY(x) VREX_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capability held. */
#define VREX_REQUIRES(...) \
    VREX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the capability (held on return). */
#define VREX_ACQUIRE(...) \
    VREX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capability (held on entry). */
#define VREX_RELEASE(...) \
    VREX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns @p result. */
#define VREX_TRY_ACQUIRE(...) \
    VREX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called with the capability held
 *  (catches self-deadlock on a non-recursive mutex). */
#define VREX_EXCLUDES(...) \
    VREX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the named capability. */
#define VREX_RETURN_CAPABILITY(x) VREX_THREAD_ANNOTATION(lock_returned(x))

/** Opt-out for code the analysis cannot model. Policy: only
 *  thread_pool internals may use this (enforced by review — see
 *  tools/README.md); everything else restructures instead. */
#define VREX_NO_THREAD_SAFETY_ANALYSIS \
    VREX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vrex
{

/** std::mutex with a capability annotation. */
class VREX_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() VREX_ACQUIRE() { mu.lock(); }
    void unlock() VREX_RELEASE() { mu.unlock(); }
    bool try_lock() VREX_TRY_ACQUIRE(true) { return mu.try_lock(); }

    /** The wrapped std mutex, for std interop (UniqueLock/CondVar).
     *  Locking through this bypasses the analysis — don't. */
    std::mutex &native() { return mu; }

  private:
    std::mutex mu;
};

/** std::lock_guard over Mutex, visible to the analysis. */
class VREX_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) VREX_ACQUIRE(m) : mu(m) { mu.lock(); }
    ~LockGuard() VREX_RELEASE() { mu.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu;
};

/** Scoped lock that CondVar can wait on. Unlike std::unique_lock it
 *  is always locked while alive — the only way to release early is
 *  destruction, and CondVar::wait restores the lock before
 *  returning, so the capability model matches reality everywhere
 *  caller code runs. */
class VREX_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &m) VREX_ACQUIRE(m) : lk(m.native()) {}
    ~UniqueLock() VREX_RELEASE() {}

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk;
};

/** Condition variable paired with UniqueLock. Spurious wakeups are
 *  possible: callers loop on their guarded predicate inline (see the
 *  file comment for why the predicate-lambda style is banned in
 *  annotated code). */
class CondVar
{
  public:
    void notify_one() noexcept { cv.notify_one(); }
    void notify_all() noexcept { cv.notify_all(); }

    /** Atomically release @p lock, sleep, reacquire. The capability
     *  is held again when this returns. */
    void wait(UniqueLock &lock) { cv.wait(lock.lk); }

  private:
    std::condition_variable cv;
};

} // namespace vrex

#endif // VREX_COMMON_THREAD_ANNOTATIONS_HH
