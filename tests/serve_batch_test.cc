/**
 * @file
 * Cross-session batched generation (PR 10): the fused dispatch path
 * must be a pure throughput optimization — per-session results stay
 * byte-identical to sequential StreamingSession replays whether or
 * not steps coalesce, across scheduler shapes, retrieval policies,
 * and seed mixes (equal seeds share weights and exercise the grouped
 * matmuls; distinct seeds exercise per-row group boundaries).
 *
 * Also locks the Stats::batch accounting: a staged same-shape burst
 * coalesces into exactly the expected fused steps, the size
 * histogram and fill ratio agree with the counters, maxBatch caps
 * the observed size, and solo Generate units are tallied when the
 * fused path is armed but a step cannot coalesce. The hibernation
 * interplay (a fused member waking from the cold store mid-burst)
 * rides the same identity check.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "pipeline/streaming_session.hh"
#include "serve/engine.hh"
#include "serve/stats.hh"
#include "testutil.hh"
#include "video/workload.hh"

using namespace vrex;
using namespace vrex::serve;
using testutil::expectIdenticalRuns;
using testutil::sequentialReplay;

namespace
{

BatchConfig
batchOn(uint32_t max_batch = 16)
{
    BatchConfig b;
    b.enabled = true;
    b.maxBatch = max_batch;
    return b;
}

/** A script that is all single-step generation after a tiny warmup:
 *  the maximally coalescible shape. */
SessionScript
generateHeavyScript(uint64_t seed, size_t index, uint32_t steps)
{
    testutil::VerbMix mix;
    mix.minEvents = 1;
    mix.eventSpan = 0;
    mix.frameWeight = 1;
    mix.questionWeight = 0;
    mix.generateWeight = 0;
    mix.endWithQa = false;
    mix.namePrefix = "batch-gen-";
    SessionScript s = testutil::randomVerbScript(seed, index, mix);
    s.events.push_back({SessionEvent::Type::Generate, steps});
    return s;
}

} // namespace

// ---------------------------------------------------------------
// Byte-identity: batched == sequential, forced on
// ---------------------------------------------------------------

TEST(BatchIdentity, ForcedOnMatchesSequentialAcrossShapesAndPolicies)
{
    // The serve_sched_test stress sweep with the fused path armed:
    // same scripts, same policies, same shapes — and the acceptance
    // bar is unchanged, byte-identity against the sequential replay.
    const ModelConfig model = ModelConfig::tiny();
    const std::vector<PolicySpec> specs = testutil::policySpecZoo();
    const size_t kSessions = 6;

    for (const bool shared_seed : {true, false}) {
        for (const auto &[workers, slice] : testutil::schedShapeZoo()) {
            EngineConfig cfg;
            cfg.model = model;
            cfg.workers = workers;
            cfg.sched.sliceEvents = slice;
            cfg.batching = batchOn();
            Engine engine(cfg);

            std::vector<SessionScript> scripts;
            std::vector<uint64_t> seeds;
            std::vector<SessionId> ids;
            for (size_t i = 0; i < kSessions; ++i) {
                scripts.push_back(
                    testutil::randomVerbScript(800 + i, i));
                SessionOptions o =
                    SessionOptions::fromScript(scripts[i]);
                o.policy = specs[i % specs.size()];
                seeds.push_back(shared_seed ? 2000 : 2000 + i);
                o.sessionSeed = seeds[i];
                ids.push_back(engine.createSession(o));
            }

            // Staged burst: everything enqueued before any dispatch
            // maximizes the ready-peer overlap the claim path sees.
            engine.pause();
            for (size_t i = 0; i < kSessions; ++i)
                engine.enqueue(ids[i], scripts[i].events);
            engine.resume();

            for (size_t i = 0; i < kSessions; ++i) {
                SessionRunResult concurrent = engine.result(ids[i]);
                expectIdenticalRuns(
                    concurrent,
                    sequentialReplay(model, scripts[i],
                                     specs[i % specs.size()],
                                     seeds[i]));
                engine.closeSession(ids[i]);
            }

            Stats st = engine.stats();
            EXPECT_EQ(st.itemsEnqueued, st.itemsExecuted);
            EXPECT_TRUE(st.batch.config.enabled);
            EXPECT_LE(st.batch.maxBatchObserved,
                      st.batch.config.maxBatch);
            EXPECT_GE(st.batch.coalescedMembers,
                      2 * st.batch.coalescedSteps);
        }
    }
}

TEST(BatchIdentity, InterleavedFeedingMatchesSequential)
{
    // Chunked interleaved feeding (the serve_sched_test pattern)
    // instead of a staged burst: coalescing opportunities arrive
    // raggedly, exercising the solo/fused mode switches mid-session.
    const ModelConfig model = ModelConfig::tiny();
    const std::vector<PolicySpec> specs = testutil::policySpecZoo();
    const size_t kSessions = 5;

    EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 4;
    cfg.sched.sliceEvents = 1;
    cfg.batching = batchOn(4);
    Engine engine(cfg);

    std::vector<SessionScript> scripts;
    std::vector<SessionId> ids;
    for (size_t i = 0; i < kSessions; ++i) {
        scripts.push_back(testutil::randomVerbScript(900 + i, i));
        SessionOptions o = SessionOptions::fromScript(scripts[i]);
        o.policy = specs[i % specs.size()];
        o.sessionSeed = 3000 + i;
        ids.push_back(engine.createSession(o));
    }

    Rng feed(4242, "batch-feed");
    std::vector<size_t> cursor(kSessions, 0);
    bool remaining = true;
    while (remaining) {
        remaining = false;
        for (size_t i = 0; i < kSessions; ++i) {
            const auto &events = scripts[i].events;
            if (cursor[i] >= events.size())
                continue;
            const size_t k = std::min<size_t>(
                1 + feed.nextU64() % 3, events.size() - cursor[i]);
            engine.enqueue(
                ids[i],
                {events.begin() + static_cast<ptrdiff_t>(cursor[i]),
                 events.begin() +
                     static_cast<ptrdiff_t>(cursor[i] + k)});
            cursor[i] += k;
            remaining |= cursor[i] < events.size();
        }
    }

    for (size_t i = 0; i < kSessions; ++i) {
        SessionRunResult concurrent = engine.result(ids[i]);
        engine.closeSession(ids[i]);
        expectIdenticalRuns(
            concurrent,
            sequentialReplay(model, scripts[i],
                             specs[i % specs.size()], 3000 + i));
    }
}

// ---------------------------------------------------------------
// Stats::batch accounting
// ---------------------------------------------------------------

TEST(BatchStats, StagedBurstCoalescesExactly)
{
    // 8 all-generation sessions staged behind pause() on one worker:
    // every round all 8 are ready together, so each of the 5 steps
    // fuses all 8 members — the counters are exact, not just sane.
    const ModelConfig model = ModelConfig::tiny();
    const size_t kSessions = 8;
    const uint32_t kSteps = 5;

    EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 1;
    cfg.batching = batchOn();
    Engine engine(cfg);

    std::vector<SessionId> ids;
    for (size_t i = 0; i < kSessions; ++i) {
        SessionOptions o;
        o.name = "burst-" + std::to_string(i);
        ids.push_back(engine.createSession(o));
    }
    engine.pause();
    for (SessionId id : ids)
        engine.enqueue(
            id, {{SessionEvent::Type::Generate, kSteps}});
    engine.resume();
    engine.waitAll();

    Stats st = engine.stats();
    EXPECT_EQ(st.batch.coalescedSteps, kSteps);
    EXPECT_EQ(st.batch.coalescedMembers, kSteps * kSessions);
    EXPECT_EQ(st.batch.soloSteps, 0u);
    EXPECT_EQ(st.batch.maxBatchObserved, kSessions);
    EXPECT_DOUBLE_EQ(st.batch.meanBatchSize(),
                     static_cast<double>(kSessions));
    EXPECT_DOUBLE_EQ(st.batch.fillRatio(),
                     static_cast<double>(kSessions) /
                         st.batch.config.maxBatch);
    EXPECT_EQ(st.batch.sizeHist.total(), st.batch.coalescedSteps);
    // Every member's step counts one unit item for its session.
    EXPECT_EQ(st.itemsExecuted, kSteps * kSessions);
    for (SessionId id : ids)
        engine.closeSession(id);
}

TEST(BatchStats, MaxBatchCapsFusedSteps)
{
    const ModelConfig model = ModelConfig::tiny();
    const size_t kSessions = 7;

    EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 1;
    cfg.batching = batchOn(3);
    Engine engine(cfg);

    std::vector<SessionId> ids;
    for (size_t i = 0; i < kSessions; ++i)
        ids.push_back(engine.createSession());
    engine.pause();
    for (SessionId id : ids)
        engine.enqueue(id, {{SessionEvent::Type::Generate, 2}});
    engine.resume();
    engine.waitAll();

    Stats st = engine.stats();
    EXPECT_LE(st.batch.maxBatchObserved, 3u);
    EXPECT_GT(st.batch.coalescedSteps, 0u);
    // Units are conserved across the solo/fused split.
    EXPECT_EQ(st.batch.coalescedMembers + st.batch.soloSteps,
              kSessions * 2u);
    for (SessionId id : ids)
        engine.closeSession(id);
}

TEST(BatchStats, DisabledByDefaultAndSoloTallied)
{
    const ModelConfig model = ModelConfig::tiny();
    {
        EngineConfig cfg;
        cfg.model = model;
        Engine engine(cfg);
        SessionId id = engine.createSession();
        engine.enqueue(id, {{SessionEvent::Type::Generate, 3}});
        engine.waitAll();
        Stats st = engine.stats();
        EXPECT_FALSE(st.batch.config.enabled);
        EXPECT_EQ(st.batch.coalescedSteps, 0u);
        EXPECT_EQ(st.batch.soloSteps, 0u); // Not even tallied.
        engine.closeSession(id);
    }
    {
        // Armed but alone: generation cannot coalesce, so every
        // step lands in the solo tally.
        EngineConfig cfg;
        cfg.model = model;
        cfg.workers = 1;
        cfg.batching = batchOn();
        Engine engine(cfg);
        SessionId id = engine.createSession();
        engine.enqueue(id, {{SessionEvent::Type::Generate, 3}});
        engine.waitAll();
        Stats st = engine.stats();
        EXPECT_EQ(st.batch.coalescedSteps, 0u);
        EXPECT_EQ(st.batch.soloSteps, 3u);
        engine.closeSession(id);
    }
}

// ---------------------------------------------------------------
// Hibernation interplay
// ---------------------------------------------------------------

TEST(BatchHibernate, FusedMembersWakeFromColdStoreBitExact)
{
    // A 1-byte budget hibernates every idle session the next slice's
    // enforcement sweep can pin. Ragged script lengths make short
    // sessions drain (and hibernate) while long ones still step;
    // a second staged wave then pulls the hibernated ones straight
    // into fused steps — runBatch must wake them from the cold store
    // first, and the identity bar is unchanged.
    const ModelConfig model = ModelConfig::tiny();
    const std::vector<PolicySpec> specs = testutil::policySpecZoo();
    const size_t kSessions = 5;

    EngineConfig cfg;
    cfg.model = model;
    cfg.workers = 2;
    cfg.sched.sliceEvents = 1;
    cfg.batching = batchOn();
    cfg.kvBudget.budgetBytes = 1;
    Engine engine(cfg);

    std::vector<SessionScript> scripts;
    std::vector<SessionId> ids;
    for (size_t i = 0; i < kSessions; ++i) {
        // 1..9 generation steps: members leave the lockstep early.
        scripts.push_back(generateHeavyScript(
            600 + i, i, 1 + 2 * static_cast<uint32_t>(i)));
        SessionOptions o = SessionOptions::fromScript(scripts[i]);
        o.policy = specs[i % specs.size()];
        o.sessionSeed = 4000 + i;
        ids.push_back(engine.createSession(o));
    }
    engine.pause();
    for (size_t i = 0; i < kSessions; ++i)
        engine.enqueue(ids[i], scripts[i].events);
    engine.resume();
    engine.waitAll();

    // Everyone is idle now: one more solo slice's enforcement sweep
    // hibernates the rest, then the second wave (staged again) fuses
    // cold and warm members into the same steps.
    const SessionEvent wave2{SessionEvent::Type::Generate, 4};
    engine.pause();
    for (size_t i = 0; i < kSessions; ++i) {
        scripts[i].events.push_back(wave2);
        engine.enqueue(ids[i], {wave2});
    }
    engine.resume();

    for (size_t i = 0; i < kSessions; ++i) {
        SessionRunResult concurrent = engine.result(ids[i]);
        engine.closeSession(ids[i]);
        expectIdenticalRuns(
            concurrent,
            sequentialReplay(model, scripts[i],
                             specs[i % specs.size()], 4000 + i));
    }
    Stats st = engine.stats();
    EXPECT_GT(st.kv.hibernates, 0u);
    EXPECT_GT(st.kv.wakes, 0u);
    EXPECT_GT(st.batch.coalescedSteps, 0u);
}

// ---------------------------------------------------------------
// Fused model step, engine-free
// ---------------------------------------------------------------

TEST(BatchStep, GenerateStepBatchedMatchesSoloSessions)
{
    // Direct StreamingSession-level identity: fused vs solo stepping
    // of mixed-seed sessions (two weight groups) with different
    // context depths.
    const ModelConfig model = ModelConfig::tiny();
    const uint64_t seeds[4] = {7, 7, 9, 7};

    std::vector<PolicyInstance> fused_pol, solo_pol;
    std::vector<std::unique_ptr<StreamingSession>> fused, solo;
    for (int i = 0; i < 4; ++i) {
        SessionScript warm = generateHeavyScript(100 + i, i, 0);
        for (auto *vec : {&fused, &solo}) {
            auto &pols = vec == &fused ? fused_pol : solo_pol;
            pols.push_back(makePolicy(model, PolicySpec::rekv(0.5f)));
            vec->push_back(std::make_unique<StreamingSession>(
                model, pols.back().active(), seeds[i]));
            vec->back()->begin(warm.name, warm.video, warm.seed);
            for (const SessionEvent &e : warm.events)
                vec->back()->apply(e);
        }
    }

    std::vector<StreamingSession *> members;
    for (auto &s : fused)
        members.push_back(s.get());
    for (int step = 0; step < 3; ++step) {
        StreamingSession::generateStepBatched(members);
        for (auto &s : solo)
            s->apply({SessionEvent::Type::Generate, 1});
    }
    for (int i = 0; i < 4; ++i)
        expectIdenticalRuns(fused[i]->snapshot(),
                            solo[i]->snapshot());
}
