// Fixture: serve sits at the top of the DAG — including llm, kvstore
// and pipeline headers is legal, as are system and same-directory
// includes.
#include <vector>

#include "kvstore/cold_store.hh"
#include "llm/kv_cache.hh"
#include "pipeline/driver.hh"
#include "scheduler_local.hh"

int fx = 0;
