#include "pipeline/coupling.hh"

#include <algorithm>

namespace vrex
{

MethodModel
coupleRatios(MethodModel base, const SessionRunResult &measured)
{
    if (base.selectsInPrefill)
        base.frameSelRatio = std::clamp(measured.frameRatio, 0.0, 1.0);
    if (base.selectsInGeneration)
        base.genSelRatio = std::clamp(measured.textRatio, 0.0, 1.0);
    return base;
}

MethodModel
coupleResv(MethodModel base, const SessionRunResult &measured,
           double avg_cluster_size)
{
    base = coupleRatios(base, measured);
    if (avg_cluster_size > 1.0)
        base.tokensPerCluster = avg_cluster_size;
    return base;
}

} // namespace vrex
