#!/usr/bin/env bash
# Refresh bench/batch_baseline.json from a fig_batch run on THIS
# machine.
#
# The batch baseline floor-gates the batched/sequential generation
# throughput multiplier of the cross-session fused dispatch path
# (see src/serve/README.md): rows with >= 8 same-geometry sessions
# that measure >= 1.5x get a floor at the measured value (the 25%
# relative tolerance is the headroom), the fused-step shape counters
# band-gate as exact logical counts, and raw steps/s are recorded as
# "info" and never compared. Regenerate it when the fused kernels or
# the dispatch path change shape — and run it on a machine
# representative of CI, since multipliers written on a large-cache
# desktop may be unreachable on shared runners.
#
# usage: bench/refresh_batch_baseline.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${1:-build}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/fig_batch" --quiet --json "$TMP/BENCH_fig_batch.json" \
    --write-batch-baseline bench/batch_baseline.json

# Sanity: the run that produced the baseline must pass its own gate.
"$BUILD/bench/drift_check" --baseline bench/batch_baseline.json \
    "$TMP/BENCH_fig_batch.json"
