/**
 * @file
 * Table II reproduction: accuracy and retrieval ratio of each
 * retrieval method across the five COIN task archetypes.
 *
 * Substitution (see DESIGN.md): COIN Top-1 accuracy is replaced by
 * the attention-fidelity proxy mapped onto the paper's published
 * vanilla (VideoLLM-Online) accuracies; retrieval ratios are measured
 * directly from the functional pipeline. The orderings to check
 * against the paper: ReSV achieves the lowest ratios with the
 * smallest accuracy drop; InfiniGen holds accuracy but retrieves
 * 100% during frame processing; InfiniGenP/ReKV lose more accuracy.
 */

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "core/resv.hh"
#include "pipeline/accuracy_eval.hh"
#include "retrieval/policies.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

/** Paper Table II vanilla (VideoLLM-Online) Top-1 per task. */
const std::map<CoinTask, double> vanillaAcc = {
    {CoinTask::Step, 49.0},  {CoinTask::Next, 62.1},
    {CoinTask::Proc, 51.6},  {CoinTask::ProcPlus, 92.5},
    {CoinTask::Task, 49.5},
};

struct MethodEntry
{
    std::string name;
    std::function<std::unique_ptr<SelectionPolicy>(
        const ModelConfig &)> make;
};

} // namespace

int
main()
{
    const ModelConfig cfg = ModelConfig::tiny();
    const uint64_t seed = 42;

    std::vector<MethodEntry> methods;
    methods.push_back({"VideoLLM-Online", [](const ModelConfig &) {
        return std::unique_ptr<SelectionPolicy>();
    }});
    methods.push_back({"InfiniGen", [](const ModelConfig &m) {
        InfiniGenConfig c;
        c.ratio = 0.5f;
        return std::unique_ptr<SelectionPolicy>(
            new InfiniGenPolicy(m, c));
    }});
    methods.push_back({"InfiniGenP", [](const ModelConfig &m) {
        InfiniGenConfig c;
        c.ratio = 0.5f;
        c.prefill = true;
        return std::unique_ptr<SelectionPolicy>(
            new InfiniGenPolicy(m, c));
    }});
    methods.push_back({"ReKV", [](const ModelConfig &m) {
        ReKVConfig c;
        c.ratio = 0.5f;
        return std::unique_ptr<SelectionPolicy>(
            new ReKVPolicy(m, c));
    }});
    methods.push_back({"V-Rex's ReSV", [](const ModelConfig &m) {
        ResvConfig c;  // N_hp=32, Th_hd=7, Th_r-wics=0.3.
        return std::unique_ptr<SelectionPolicy>(
            new ResvPolicy(m, c));
    }});

    bench::header("Table II: COIN accuracy proxy (Top-1) per method");
    std::printf("%-16s", "Method");
    for (CoinTask t : allCoinTasks())
        std::printf(" %8s", coinTaskName(t).c_str());
    std::printf(" %8s\n", "Avg");

    struct Ratios { double frame, text; };
    std::map<std::string, std::vector<Ratios>> ratio_table;

    for (const auto &m : methods) {
        std::printf("%-16s", m.name.c_str());
        double acc_sum = 0.0;
        for (CoinTask t : allCoinTasks()) {
            SessionScript script = WorkloadGenerator::coinTask(t, 3);
            auto policy = m.make(cfg);
            FidelityResult f = evaluateFidelity(cfg, script,
                                                policy.get(), seed);
            double acc = proxyAccuracy(vanillaAcc.at(t), f);
            acc_sum += acc;
            std::printf(" %8.1f", acc);
            ratio_table[m.name].push_back(
                {f.frameRatio, f.textRatio});
        }
        std::printf(" %8.1f\n", acc_sum / 5.0);
    }

    bench::header(
        "Table II: retrieval ratio [frame stage / text stage] %");
    for (const auto &m : methods) {
        if (m.name == "VideoLLM-Online")
            continue;  // No retrieval.
        std::printf("%-16s", m.name.c_str());
        double fs = 0.0, ts = 0.0;
        for (const auto &r : ratio_table[m.name]) {
            std::printf(" %5.1f/%-5.1f", 100.0 * r.frame,
                        100.0 * r.text);
            fs += r.frame;
            ts += r.text;
        }
        std::printf(" %5.1f/%-5.1f\n", 100.0 * fs / 5.0,
                    100.0 * ts / 5.0);
    }
    bench::note("paper averages: InfiniGen 100/6.8, InfiniGenP "
                "50.8/6.8, ReKV 58.4/31.2, ReSV 32.7/2.5; ReSV drops "
                "only 0.8% accuracy vs vanilla");
    return 0;
}
