/**
 * @file
 * Versioned, checksummed binary serialization for session state.
 *
 * The hibernation/migration path (StreamingSession::serialize /
 * restore, serve::ColdStore) moves whole sessions as opaque byte
 * blobs. The contract is *byte-exactness*: every float crosses the
 * boundary via bit-preserving copies, so a restored session computes
 * bit-identical results to one that never hibernated.
 *
 * Blob layout:
 *
 *     u32 magic  'VXSB'        (rejects foreign data early)
 *     u32 version               (cross-version restores are refused)
 *     ...payload...             (ByteWriter/ByteReader primitives)
 *     u64 fnv1a64(everything above)
 *
 * ByteReader validates magic, version and checksum up front, so
 * truncated or corrupted blobs fail with SerialError before any
 * payload is interpreted. Numbers are stored in the host byte order
 * (little-endian on every supported target); blobs are not an
 * interchange format across differently-ordered architectures.
 */

#ifndef VREX_COMMON_SERIAL_HH
#define VREX_COMMON_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace vrex::serial
{

/** Any restore-side failure: truncation, corruption, bad version,
 *  or a blob that does not match the restoring object's identity. */
class SerialError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** FNV-1a 64-bit hash (the blob footer checksum). */
uint64_t fnv1a64(const uint8_t *data, size_t n);

/** Blob magic: 'V' 'X' 'S' 'B' (v-rex session blob). */
inline constexpr uint32_t kBlobMagic = 0x42535856u;

/** Appends primitives to a growing byte buffer. */
class ByteWriter
{
  public:
    /** Opens a blob: writes the magic + @p version header. */
    explicit ByteWriter(uint32_t version);

    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "put() needs a trivially copyable type");
        const size_t at = buf.size();
        buf.resize(at + sizeof(T));
        std::memcpy(buf.data() + at, &value, sizeof(T));
    }

    void putBool(bool value) { put<uint8_t>(value ? 1 : 0); }

    void putString(const std::string &s);

    /** Raw bytes, no length prefix (caller encodes the shape). */
    void
    putBytes(const void *p, size_t n)
    {
        const size_t at = buf.size();
        buf.resize(at + n);
        if (n > 0)
            std::memcpy(buf.data() + at, p, n);
    }

    /** Length-prefixed vector of trivially copyable elements. */
    template <typename T>
    void
    putVec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "putVec() needs trivially copyable elements");
        put<uint64_t>(v.size());
        const size_t at = buf.size();
        buf.resize(at + v.size() * sizeof(T));
        if (!v.empty())
            std::memcpy(buf.data() + at, v.data(),
                        v.size() * sizeof(T));
    }

    /** Seals the blob: appends the checksum and returns the bytes.
     *  The writer must not be reused afterwards. */
    std::vector<uint8_t> finish();

  private:
    std::vector<uint8_t> buf;
};

/** Reads primitives back; throws SerialError on any overrun. */
class ByteReader
{
  public:
    /**
     * Validates the header and footer of @p blob: magic, checksum,
     * and that the stored version equals @p expect_version (a
     * version mismatch is refused — state layouts are not forward or
     * backward compatible).
     */
    ByteReader(const std::vector<uint8_t> &blob,
               uint32_t expect_version);

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "get() needs a trivially copyable type");
        need(sizeof(T));
        T value;
        std::memcpy(&value, data + pos, sizeof(T));
        pos += sizeof(T);
        return value;
    }

    bool getBool() { return get<uint8_t>() != 0; }

    std::string getString();

    /** Raw bytes, no length prefix (caller knows the shape). */
    void
    getBytes(void *p, size_t n)
    {
        need(n);
        if (n > 0)
            std::memcpy(p, data + pos, n);
        pos += n;
    }

    template <typename T>
    std::vector<T>
    getVec()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "getVec() needs trivially copyable elements");
        const uint64_t n = get<uint64_t>();
        // Guard the multiply: a corrupted length must not overflow
        // into a small allocation.
        if (n > remaining() / sizeof(T))
            throw SerialError(
                "vrex::serial: truncated blob (vector length " +
                std::to_string(n) + " exceeds remaining payload)");
        std::vector<T> v(static_cast<size_t>(n));
        if (n > 0)
            std::memcpy(v.data(), data + pos,
                        static_cast<size_t>(n) * sizeof(T));
        pos += static_cast<size_t>(n) * sizeof(T);
        return v;
    }

    /** Payload bytes not yet consumed (excludes the footer). */
    size_t remaining() const { return end - pos; }

    /** Asserts the payload was consumed exactly. */
    void expectEnd() const;

  private:
    void need(size_t n) const;

    const uint8_t *data;
    size_t pos;  //!< Next unread payload byte.
    size_t end;  //!< One past the last payload byte (pre-footer).
};

} // namespace vrex::serial

#endif // VREX_COMMON_SERIAL_HH
