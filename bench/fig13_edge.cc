/**
 * @file
 * Fig. 13a reproduction: per-frame latency, TPOT, and energy
 * efficiency on the edge platform (AGX Orin vs. V-Rex8) across KV
 * cache lengths 1K-40K for all five methods, at batch 1 and batch 4.
 *
 * Paper anchors: V-Rex8 per-frame 121/123/198/200/254 ms (batch 1),
 * 3.9-8.3 FPS, 2.2-7.3x over AGX+FlexGen; TPOT 89-97 ms with
 * 1.9-15.1x speedups; energy efficiency 5.5-10.2x (frame, batch 1).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

struct Entry
{
    std::string label;
    AcceleratorConfig hw;
    MethodModel method;
};

std::vector<Entry>
edgeEntries()
{
    return {
        {"AGX+FlexGen", AcceleratorConfig::agxOrin(),
         MethodModel::flexgen()},
        {"AGX+InfiniGen", AcceleratorConfig::agxOrin(),
         MethodModel::infinigen()},
        {"AGX+InfiniGenP", AcceleratorConfig::agxOrin(),
         MethodModel::infinigenP()},
        {"AGX+ReKV", AcceleratorConfig::agxOrin(),
         MethodModel::rekv()},
        {"V-Rex8", AcceleratorConfig::vrex8(),
         MethodModel::resvFull()},
    };
}

void
sweep(const char *title, uint32_t batch, bool decode)
{
    bench::header(title);
    auto entries = edgeEntries();
    std::printf("%-16s", "method");
    for (uint32_t c : bench::cacheSweep())
        std::printf(" %10s", bench::kLabel(c).c_str());
    std::printf("\n");

    std::vector<std::vector<double>> lat(entries.size());
    for (size_t e = 0; e < entries.size(); ++e) {
        std::printf("%-16s", entries[e].label.c_str());
        for (uint32_t cache : bench::cacheSweep()) {
            RunConfig rc;
            rc.hw = entries[e].hw;
            rc.method = entries[e].method;
            rc.cacheTokens = cache;
            rc.batch = batch;
            SystemModel sm(rc);
            PhaseResult r =
                decode ? sm.decodePhase() : sm.framePhase();
            lat[e].push_back(r.totalMs);
            std::printf(" %9.0fms", r.totalMs);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "V-Rex speedup");
    for (size_t i = 0; i < bench::cacheSweep().size(); ++i)
        std::printf(" %9.1fx ", lat[0][i] / lat.back()[i]);
    std::printf("\n");
    if (!decode) {
        std::printf("%-16s", "V-Rex FPS");
        for (size_t i = 0; i < bench::cacheSweep().size(); ++i)
            std::printf(" %10.1f",
                        batch * 1000.0 / lat.back()[i]);
        std::printf("\n");
    }
}

void
energySweep(const char *title, uint32_t batch, bool decode)
{
    bench::header(title);
    auto entries = edgeEntries();
    std::printf("%-16s", "method");
    for (uint32_t c : bench::cacheSweep())
        std::printf(" %10s", bench::kLabel(c).c_str());
    std::printf("\n");
    std::vector<std::vector<double>> eff(entries.size());
    for (size_t e = 0; e < entries.size(); ++e) {
        std::printf("%-16s", entries[e].label.c_str());
        for (uint32_t cache : bench::cacheSweep()) {
            RunConfig rc;
            rc.hw = entries[e].hw;
            rc.method = entries[e].method;
            rc.cacheTokens = cache;
            rc.batch = batch;
            SystemModel sm(rc);
            PhaseResult r =
                decode ? sm.decodePhase() : sm.framePhase();
            eff[e].push_back(r.gopsPerW());
            std::printf(" %10.1f", r.gopsPerW());
        }
        std::printf("\n");
    }
    std::printf("%-16s", "V-Rex gain");
    for (size_t i = 0; i < bench::cacheSweep().size(); ++i)
        std::printf(" %9.1fx ", eff.back()[i] / eff[0][i]);
    std::printf("\n");
}

} // namespace

int
main()
{
    sweep("Fig. 13a: per-frame latency, batch 1 (edge)", 1, false);
    sweep("Fig. 13a: TPOT latency, batch 1 (edge)", 1, true);
    sweep("Fig. 13a: per-frame latency, batch 4 (edge)", 4, false);
    energySweep("Fig. 13a: energy efficiency GOPS/W, frame batch 1",
                1, false);
    energySweep("Fig. 13a: energy efficiency GOPS/W, text batch 1",
                1, true);
    energySweep("Fig. 13a: energy efficiency GOPS/W, frame batch 4",
                4, false);
    bench::note("paper anchors: V-Rex8 frame 121-254 ms (3.9-8.3 FPS), "
                "speedup 2.2-7.3x (b1) / 2.1-13.8x (b4); TPOT 89-97 ms "
                "1.9-15.1x; energy 5.5-10.2x (b1), 3.1-12.8x (b4), "
                "4.3-18.5x (text)");
    return 0;
}
