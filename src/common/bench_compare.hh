/**
 * @file
 * Reader-side of the bench reporting subsystem: load and validate
 * `vrex-bench-1` reports, cross-check CSV output, and diff a run
 * against the checked-in `bench/baseline.json` with tolerance bands.
 * The `drift_check` CLI in bench/ is a thin wrapper over this.
 */

#ifndef VREX_COMMON_BENCH_COMPARE_HH
#define VREX_COMMON_BENCH_COMPARE_HH

#include <string>
#include <vector>

namespace vrex::bench
{

/**
 * How a baseline record is enforced by compareToBaseline. The figure
 * baseline uses the default two-sided Band everywhere; the kernel
 * perf baseline (bench/perf_baseline.json) marks speedup ratios as
 * Floor (only a drop below baseline - tol fails) and raw ns/op
 * timings as Info (recorded for trend reading, never compared —
 * wall-clock numbers are machine-relative).
 */
enum class Gate : uint8_t
{
    Band = 0,  //!< |got - base| must stay within the tolerance.
    Floor,     //!< got must not drop below base - tolerance.
    Ceiling,   //!< got must not rise above base + tolerance.
    Info,      //!< Presence/unit checked; value never compared.
};

/** One metric record with its owning bench (the baseline spans all). */
struct Record
{
    std::string bench;
    std::string panel;
    std::string row;
    std::string metric;
    double value = 0.0;  // NaN when the report stored null.
    std::string unit;
    /** Enforcement mode; only meaningful on baseline records. */
    Gate gate = Gate::Band;

    std::string key() const;    // Identity: bench/panel/row/metric.
    std::string pretty() const; // Identity for error messages.
};

/** Lower-case gate name ("band", "floor", "ceiling", "info"). */
const char *gateName(Gate gate);

/** A parsed --json report from one bench binary. */
struct LoadedReport
{
    std::string bench;
    std::vector<Record> records;
};

/**
 * Parse and schema-validate one report document. Returns false and
 * sets `err` when the document is not valid vrex-bench-1 (wrong
 * schema tag, missing/ill-typed fields, record bench mismatching the
 * report bench, or duplicate record identities).
 */
bool loadReport(const std::string &jsonText, LoadedReport &out,
                std::string &err);

/** Parse a --csv file into records (same validation as loadReport). */
bool loadCsv(const std::string &csvText, std::vector<Record> &out,
             std::string &err);

/**
 * Check that a JSON report and a CSV report carry exactly the same
 * records (the round-trip CI asserts). Order must match too: both
 * writers emit insertion order.
 */
bool sameRecords(const LoadedReport &json,
                 const std::vector<Record> &csv, std::string &err);

/** The checked-in drift reference plus its tolerance policy. */
struct Baseline
{
    double defaultRelTol = 0.05;
    double defaultAbsTol = 1e-6;
    /** Per-bench relative-tolerance overrides (noisier benches). */
    std::vector<std::pair<std::string, double>> benchRelTol;
    std::vector<Record> records;

    double relTolFor(const std::string &bench) const;
};

bool loadBaseline(const std::string &jsonText, Baseline &out,
                  std::string &err);

/** Serialize a Baseline back to its vrex-bench-baseline-1 document. */
std::string renderBaseline(const Baseline &b);

/** One detected divergence between a run and the baseline. */
struct DriftIssue
{
    enum class Kind { MissingMetric, UnitMismatch, OutOfTolerance };
    Kind kind;
    Record base;
    double got = 0.0;  // Meaningful for OutOfTolerance only.
    std::string describe() const;
};

struct DriftReport
{
    std::vector<DriftIssue> issues;
    size_t compared = 0;
    size_t newMetrics = 0;  // Present in the run, absent in baseline.
    /** Benches that produced a report but have no baseline records. */
    std::vector<std::string> benchesWithoutBaseline;

    bool ok() const { return issues.empty(); }
};

/**
 * Diff candidate reports against the baseline. Only baseline records
 * whose bench actually produced a candidate report are enforced, so a
 * partial run (one figure) can still be gated. A metric passes when
 * |got - base| <= max(defaultAbsTol, relTol(bench) * |base|), or when
 * both sides are non-finite.
 */
DriftReport compareToBaseline(const Baseline &baseline,
                              const std::vector<LoadedReport> &runs);

} // namespace vrex::bench

#endif // VREX_COMMON_BENCH_COMPARE_HH
