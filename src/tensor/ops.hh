/**
 * @file
 * Dense math kernels for the functional transformer runtime: matmul,
 * softmax, RMSNorm, SiLU, rotary position embedding, similarity and
 * top-k helpers.
 */

#ifndef VREX_TENSOR_OPS_HH
#define VREX_TENSOR_OPS_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace vrex
{

/** out = a (m×k) * b (k×n). Shapes are checked. */
void matmul(const Matrix &a, const Matrix &b, Matrix &out);

/** out = a (m×k) * b^T (n×k). */
void matmulTransposed(const Matrix &a, const Matrix &bT, Matrix &out);

/**
 * One contiguous run of `a` rows sharing a weight matrix in
 * matmulTransposedGrouped(): rows [rowBegin, rowEnd) multiply
 * against @p bT. Groups must tile a's rows in order without gaps.
 */
struct RowGroup
{
    uint32_t rowBegin = 0;
    uint32_t rowEnd = 0;
    const Matrix *bT = nullptr;
};

/**
 * Row-grouped out = a * b^T: every group's rows multiply against
 * that group's weight matrix (all groups must agree on bT shape).
 * Each output element is the same single dot() call
 * matmulTransposed() would make, so per-row results are
 * bit-identical to per-group matmulTransposed() calls — the loop is
 * merely reordered (weight row outer, batch row inner) so one
 * streamed weight row serves every row of the group. This is the
 * fused kernel under cross-session batched generation.
 */
void matmulTransposedGrouped(const Matrix &a,
                             const std::vector<RowGroup> &groups,
                             Matrix &out);

/** Row-wise in-place softmax (same contract as softmax()). */
void softmaxRows(Matrix &m);

/**
 * Numerically stable softmax of one row buffer.
 *
 * Contract for degenerate rows: a fully masked row (every entry
 * -inf, e.g. a score row whose tokens were all masked out) becomes
 * the uniform distribution 1/n — not NaN. Rows containing NaN stay
 * untouched garbage-in-garbage-out; rows whose exp-sum underflows to
 * zero are left as the (all-zero) exponentials.
 */
void softmax(float *row, uint32_t n);

/** RMSNorm of @p x (length n) with learned gain @p weight, in place. */
void rmsNorm(float *x, const float *weight, uint32_t n, float eps = 1e-5f);

/** SiLU activation in place. */
void silu(float *x, uint32_t n);

/** Elementwise product: x *= y. */
void hadamard(float *x, const float *y, uint32_t n);

/** x += y. */
void addInPlace(float *x, const float *y, uint32_t n);

/**
 * Apply rotary position embedding to one head vector of even length
 * @p dim at sequence position @p pos (llama convention, theta=10000).
 */
void applyRope(float *head, uint32_t dim, uint32_t pos,
               float thetaBase = 10000.0f);

/** Invert applyRope (rotate by the negative angle). */
void applyRopeInverse(float *head, uint32_t dim, uint32_t pos,
                      float thetaBase = 10000.0f);

/** Dot product of two float vectors. */
float dot(const float *a, const float *b, uint32_t n);

/** L2 norm. */
float norm2(const float *a, uint32_t n);

/** Cosine similarity (0 if either vector is zero). */
float cosineSimilarity(const float *a, const float *b, uint32_t n);

/**
 * Indices of the @p k largest values in @p scores, in descending score
 * order. k is clamped to scores.size().
 */
std::vector<uint32_t> topkIndices(const std::vector<float> &scores,
                                  uint32_t k);

} // namespace vrex

#endif // VREX_TENSOR_OPS_HH
