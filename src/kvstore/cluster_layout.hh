/**
 * @file
 * Hash-cluster-based memory mapping (paper §V-C, Fig. 12 right).
 *
 * The KVMU stores tokens of the same hash cluster at contiguous
 * addresses so that a cluster-granular selection turns into few, large
 * PCIe transactions instead of many scattered ones. This module
 * computes, for a selected token set, how many contiguous runs the
 * transfer decomposes into under (a) plain time-ordered layout and
 * (b) the cluster-contiguous layout — the run counts feed the PCIe
 * transaction model.
 */

#ifndef VREX_KVSTORE_CLUSTER_LAYOUT_HH
#define VREX_KVSTORE_CLUSTER_LAYOUT_HH

#include <cstdint>
#include <vector>

namespace vrex
{

/** Token-to-address mapping maintained by the KVMU. */
class ClusterLayout
{
  public:
    /**
     * Rebuild the mapping from cluster membership lists. Tokens are
     * laid out cluster by cluster (clusters in index order, members
     * in insertion order); tokens not mentioned are appended after
     * all clusters in token order.
     *
     * @param clusters     tokenIdx lists, one per cluster.
     * @param total_tokens Total tokens in the cache.
     */
    void rebuild(const std::vector<std::vector<uint32_t>> &clusters,
                 uint32_t total_tokens);

    /** Address slot of a token (identity before any rebuild). */
    uint32_t positionOf(uint32_t token) const;

    uint32_t totalTokens() const
    {
        return static_cast<uint32_t>(position.size());
    }

    /**
     * Number of contiguous address runs a selected token set spans
     * under this layout (== PCIe transactions needed).
     */
    uint32_t runsForSelection(const std::vector<uint32_t> &tokens) const;

    /** Runs under the plain time-ordered layout (identity mapping). */
    static uint32_t
    runsTimeOrder(const std::vector<uint32_t> &sorted_tokens);

  private:
    std::vector<uint32_t> position;
};

} // namespace vrex

#endif // VREX_KVSTORE_CLUSTER_LAYOUT_HH
