/**
 * @file
 * Grouped-query attention over the KV cache, with optional per-head
 * sparse token selection (the "light attention" of ReSV's execution
 * stage).
 */

#ifndef VREX_LLM_ATTENTION_HH
#define VREX_LLM_ATTENTION_HH

#include <vector>

#include "llm/config.hh"
#include "llm/kv_cache.hh"
#include "llm/selection.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/**
 * Compute attention output for a block of T query tokens.
 *
 * Degenerate-input contract (asserted, not silently tolerated):
 *  - kv.keys and kv.values must both hold exactly past_len + T rows
 *    (the block must already be appended to the cache);
 *  - a non-null selection must carry cfg.nKvHeads head entries, and
 *    every explicit (selectAll == false) index list must stay below
 *    past_len — in particular, at past_len == 0 only selectAll or an
 *    empty index list is legal;
 *  - T == 0 (an empty query block) is handled explicitly: the result
 *    is an empty 0 x dModel matrix and the cache/selection are not
 *    read.
 *
 * @param cfg       Model geometry.
 * @param q         Post-RoPE queries, T x (nHeads*headDim).
 * @param kv        One layer's cache; must already contain the block,
 *                  i.e. kv.keys.rows() == past_len + T.
 * @param past_len  Tokens preceding the block.
 * @param sel       Per-KV-head past-token selection; nullptr = full.
 *                  Block tokens are always attended causally.
 * @param out       Result, T x dModel (heads concatenated).
 */
void attentionForward(const ModelConfig &cfg, const Matrix &q,
                      const LayerKV &kv, uint32_t past_len,
                      const LayerSelection *sel, Matrix &out);

/**
 * One member of a cross-session batched generation step: a single
 * query token attending that session's own cache under that
 * session's own selection. The same degenerate-input contract as
 * attentionForward() applies per item (with T == 1, so
 * kv->keys.rows() == pastLen + 1).
 */
struct AttentionBatchItem
{
    const LayerKV *kv = nullptr;
    uint32_t pastLen = 0;
    /** Per-KV-head past-token selection; nullptr = full. */
    const LayerSelection *sel = nullptr;
};

/**
 * Fused single-token attention over N independent sessions.
 *
 * @param cfg   Model geometry shared by every item.
 * @param q     Post-RoPE queries, N x (nHeads*headDim); row i is
 *              item i's single query token.
 * @param items One (cache, past length, selection) tuple per row.
 * @param out   Result, N x dModel; row i is bit-identical to
 *              attentionForward() over a 1-row q for item i — both
 *              paths run the same per-(head, token) kernel, so
 *              batching cannot change any session's bytes.
 */
void attentionForwardBatched(const ModelConfig &cfg, const Matrix &q,
                             const std::vector<AttentionBatchItem> &items,
                             Matrix &out);

} // namespace vrex

#endif // VREX_LLM_ATTENTION_HH
