/**
 * @file
 * KVMU layout ablation (design-choice study beyond the paper's
 * figures, supporting §V-C): replays real ReSV selections from the
 * functional model through the hierarchical KV store and measures
 * how many contiguous runs each fetch spans under (a) the plain
 * time-ordered layout and (b) the KVMU's cluster-contiguous layout,
 * then prices both with the PCIe transaction model.
 */

#include <algorithm>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "serve/engine.hh"
#include "sim/pcie_model.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    ModelConfig cfg = ModelConfig::smallVideo();

    TierConfig tiers;
    // Tiny device window so most selections require fetching.
    tiers.deviceKvCapacityBytes = 48 * cfg.kvBytesPerToken(2.0);
    tiers.offloadTarget = Tier::Storage;

    // ReSV with the memory-hierarchy replay decorator; the factory
    // wires the HC tables as the KVMU cluster-layout source.
    serve::EngineConfig engine_cfg;
    engine_cfg.model = cfg;
    engine_cfg.policy =
        serve::PolicySpec::resv().withMemoryTracking(tiers);
    engine_cfg.sessionSeed = 42;
    serve::Engine engine(engine_cfg);
    serve::SessionId id =
        engine.submit(WorkloadGenerator::coinAverage(13));
    engine.wait(id);

    const MemoryReplayStats &s = *engine.memoryStats(id);
    rep.beginPanel("replay",
                   "KVMU cluster-contiguous layout ablation "
                   "(functional replay)");
    rep.add("totals", "selected_tokens",
            static_cast<double>(s.selectedTokens), "", 0);
    rep.add("totals", "fetched", s.fetchedBytes / 1048576.0, "MiB",
            1);
    rep.add("totals", "offloaded", s.offloadedBytes / 1048576.0,
            "MiB", 1);

    rep.beginPanel("layout", "contiguous runs per layout");
    rep.add("time-ordered", "runs",
            static_cast<double>(s.runsTimeOrder), "", 0);
    rep.add("time-ordered", "tokens_per_run", s.tokensPerRunTimeOrder(),
            "", 2);
    rep.add("clustered", "runs",
            static_cast<double>(s.runsClustered), "", 0);
    rep.add("clustered", "tokens_per_run", s.tokensPerRunClustered(),
            "", 2);

    // Price both with the edge PCIe link.
    rep.beginPanel("pcie", "PCIe transfer estimate for the same "
                           "bytes");
    PcieModel pcie(4.0, 1.5);
    const double granule = cfg.kvBytesPerTokenPerLayer(2.0);
    double bytes = static_cast<double>(s.selectedTokens) * granule;
    double t_time = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsTimeOrder));
    double t_clust = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsClustered));
    rep.add("time-ordered", "transfer", t_time * 1e3, "ms", 2);
    rep.add("time-ordered", "efficiency",
            100.0 * pcie.efficiency(
                bytes / std::max<uint64_t>(1, s.runsTimeOrder)),
            "%", 0);
    rep.add("clustered", "transfer", t_clust * 1e3, "ms", 2);
    rep.add("clustered", "efficiency",
            100.0 * pcie.efficiency(
                bytes / std::max<uint64_t>(1, s.runsClustered)),
            "%", 0);
    rep.add("clustered", "txn_reduction",
            static_cast<double>(s.runsTimeOrder) /
                std::max<uint64_t>(1, s.runsClustered),
            "x", 2);
    rep.note("the KVMU stores same-cluster tokens contiguously so "
             "one transaction moves a whole cluster (Fig. 12)");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("kvmu_layout", argc, argv, run);
}
